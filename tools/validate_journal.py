"""Validate a serve state directory's job journal (strict CI stance).

The journal (``docs/serving.md``) is the serve daemon's durable record
of every job lifecycle transition; the *runtime* reader skips damage
loudly so recovery never dies, but CI wants the opposite — a journal
written by the smoke/crash tests must be pristine, so here any
unparseable line, unknown schema, illegal transition, or double
completion is an error:

* every line is a parseable JSON object carrying ``schema`` (integer
  >= 1; deep checks apply to schema 1), ``kind`` (``job``/``daemon``),
  ``event``, numeric ``ts``, and integer ``pid``;
* job records carry a non-empty ``job_id`` and only legal events;
  ``done`` needs ``digest`` + numeric ``total_s``, ``failed`` needs
  ``error``, ``shed`` needs ``reason``;
* per job, events follow the lifecycle state machine (submitted →
  admitted|shed; admitted/requeued → running; running →
  done|failed|requeued), timestamps strictly increase, and **at most
  one terminal event** ever appears — the exactly-once guarantee;
* ``--expect-done N`` additionally asserts exactly N jobs completed
  (the CI smoke's no-job-lost check).

Usage::

    python tools/validate_journal.py /path/to/state [--expect-done N]

Exit code 0 when the journal passes, 1 with diagnostics when it does not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from loudload import LoudLoadError, read_text_strict  # noqa: E402

#: Highest schema this validator checks deeply.
JOURNAL_SCHEMA = 1

JOURNAL_FILE = "journal.jsonl"

_REMEDY = (
    "the journal is the service's source of truth — restore it from the "
    "state directory backup or delete the damaged tail"
)

_JOB_EVENTS = {
    "submitted", "admitted", "shed", "running", "requeued", "done", "failed",
}
_DAEMON_EVENTS = {"start", "recovered", "breaker-open", "drain", "shutdown"}
_TERMINAL = {"shed", "done", "failed"}

#: state -> legally appendable next events (None = no prior record).
#: Mirrors ``repro.serve.journal.LEGAL_TRANSITIONS`` (kept standalone so
#: the validator needs no PYTHONPATH).
_TRANSITIONS = {
    None: {"submitted"},
    "submitted": {"admitted", "shed"},
    "admitted": {"running", "requeued", "failed"},
    "running": {"done", "failed", "requeued"},
    "requeued": {"running", "requeued", "failed"},
}


def _validate_record(record: object, label: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"{label}: record is not an object"]
    schema = record.get("schema")
    if not isinstance(schema, int) or schema < 1:
        return [f"{label}: 'schema' must be an integer >= 1, got {schema!r}"]
    if schema > JOURNAL_SCHEMA:
        return []  # a newer writer's records cannot be deep-checked here
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        problems.append(f"{label}: 'ts' must be a non-negative number")
    if not isinstance(record.get("pid"), int):
        problems.append(f"{label}: 'pid' must be an integer")
    kind = record.get("kind")
    event = record.get("event")
    if kind == "daemon":
        if event not in _DAEMON_EVENTS:
            problems.append(
                f"{label}: unknown daemon event {event!r} "
                f"(expected one of {sorted(_DAEMON_EVENTS)})"
            )
        return problems
    if kind != "job":
        problems.append(
            f"{label}: 'kind' must be 'job' or 'daemon', got {kind!r}"
        )
        return problems
    if not isinstance(record.get("job_id"), str) or not record["job_id"]:
        problems.append(f"{label}: job record lacks a non-empty 'job_id'")
    if event not in _JOB_EVENTS:
        problems.append(
            f"{label}: unknown job event {event!r} "
            f"(expected one of {sorted(_JOB_EVENTS)})"
        )
        return problems
    if event == "done":
        if not isinstance(record.get("digest"), str) or not record["digest"]:
            problems.append(f"{label}: done record lacks its 'digest' string")
        if not isinstance(record.get("total_s"), (int, float)):
            problems.append(f"{label}: done record lacks numeric 'total_s'")
    if event == "failed" and not isinstance(record.get("error"), str):
        problems.append(f"{label}: failed record lacks its 'error' string")
    if event == "shed" and not isinstance(record.get("reason"), str):
        problems.append(f"{label}: shed record lacks its 'reason' string")
    return problems


def validate_file(path: str) -> tuple[list[dict], list[str]]:
    """Validate one journal file; returns (parsed records, problems)."""
    try:
        raw = read_text_strict(path, remedy=_REMEDY)
    except LoudLoadError as exc:
        return [], [str(exc)]
    records: list[dict] = []
    problems: list[str] = []
    for lineno, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            continue
        label = f"{os.path.basename(path)}:{lineno}"
        try:
            record = json.loads(line)
        except ValueError:
            problems.append(
                f"{label}: not valid JSON (truncated append?); {_REMEDY}"
            )
            continue
        record_problems = _validate_record(record, label)
        problems.extend(record_problems)
        if not record_problems and isinstance(record, dict):
            records.append(record)
    return records, problems


def _validate_lifecycles(records: list[dict]) -> list[str]:
    """Per-job state machine, timestamp order, exactly-once terminality."""
    problems: list[str] = []
    states: dict[str, str | None] = {}
    stamps: dict[str, float] = {}
    terminal_counts: dict[str, int] = {}
    for record in records:
        if record.get("kind") != "job" or record.get("schema") != JOURNAL_SCHEMA:
            continue
        job_id = record.get("job_id")
        event = record.get("event")
        if not isinstance(job_id, str) or event not in _JOB_EVENTS:
            continue
        ts = record.get("ts", 0.0)
        if job_id in stamps and ts <= stamps[job_id]:
            problems.append(
                f"job {job_id}: timestamps not strictly increasing "
                f"({ts} after {stamps[job_id]})"
            )
        stamps[job_id] = ts
        state = states.get(job_id)
        legal = _TRANSITIONS.get(state, set())
        if state in _TERMINAL:
            problems.append(
                f"job {job_id}: event {event!r} after terminal "
                f"state {state!r} — the job was resurrected"
            )
        elif event not in legal:
            problems.append(
                f"job {job_id}: illegal transition {state!r} -> {event!r} "
                f"(legal: {sorted(legal)})"
            )
        states[job_id] = event
        if event in _TERMINAL:
            terminal_counts[job_id] = terminal_counts.get(job_id, 0) + 1
    for job_id, count in terminal_counts.items():
        if count > 1:
            problems.append(
                f"job {job_id}: {count} terminal events — completion is "
                f"not exactly-once"
            )
    return problems


def validate_state_dir(root: str) -> tuple[list[dict], list[str]]:
    """Validate the journal inside a serve state directory (or a file)."""
    path = root
    if os.path.isdir(root):
        path = os.path.join(root, JOURNAL_FILE)
    if not os.path.isfile(path):
        return [], [f"{path} does not exist — no journal was written"]
    records, problems = validate_file(path)
    problems.extend(_validate_lifecycles(records))
    return records, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "state", help="serve state directory (or a journal .jsonl file)"
    )
    parser.add_argument(
        "--expect-done", type=int, default=None, metavar="N",
        help="fail unless exactly N jobs reached 'done'",
    )
    args = parser.parse_args(argv)

    records, problems = validate_state_dir(args.state)
    done_jobs = {
        record["job_id"]
        for record in records
        if record.get("kind") == "job" and record.get("event") == "done"
    }
    if args.expect_done is not None and len(done_jobs) != args.expect_done:
        problems.append(
            f"expected exactly {args.expect_done} completed job(s), "
            f"found {len(done_jobs)}"
        )
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    jobs = {
        record["job_id"] for record in records if record.get("kind") == "job"
    }
    events = sorted({record["event"] for record in records})
    print(
        f"{args.state}: {len(records)} valid journal record(s) across "
        f"{len(jobs)} job(s), {len(done_jobs)} completed "
        f"(events: {', '.join(events)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
