"""Validate a run-ledger directory against the step-record schema.

The ledger (``docs/ledger.md``) is the append-forever execution history
behind ``repro analytics``; the *reader* skips damage loudly so
aggregation never dies, but CI wants the opposite stance — a freshly
written ledger must be pristine, so any unparseable line, unknown
schema, missing key, or out-of-order timestamp is an error here:

* every ``*.jsonl`` file in the directory must be non-empty and
  line-by-line parseable JSON objects;
* every record carries ``schema`` (integer >= 1; deep checks apply to
  schema 1), ``run_id``, ``ts``, ``step``, ``status`` (``ok`` or
  ``failed`` — failed records must carry ``error``), numeric
  non-negative ``duration_s``, a ``run`` object (``started``/``kind``/
  ``backend``/``n_docs``/``total_s``) and a ``host`` object
  (``platform``/``python``/``cpu_count``);
* within one ``run_id``, timestamps are strictly increasing — the
  wall-anchoring guarantee the analytics sort relies on.

Usage::

    python tools/validate_ledger.py /path/to/ledger

Exit code 0 when the ledger passes, 1 with diagnostics when it does not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from loudload import LoudLoadError, read_text_strict  # noqa: E402

#: Highest schema this validator checks deeply.
LEDGER_SCHEMA = 1

_REMEDY = (
    "delete the damaged ledger file (the history in other *.jsonl files "
    "survives) or restore it from a backup"
)

_STATUSES = {"ok", "failed"}

_RUN_KEYS = ("started", "kind", "backend", "n_docs", "total_s")

_HOST_KEYS = ("platform", "python", "cpu_count")


def _validate_record(record: object, label: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"{label}: record is not an object"]
    schema = record.get("schema")
    if not isinstance(schema, int) or schema < 1:
        return [f"{label}: 'schema' must be an integer >= 1, got {schema!r}"]
    if schema > LEDGER_SCHEMA:
        # A newer writer's records are not errors, but they cannot be
        # deep-checked here.
        return []
    if not isinstance(record.get("run_id"), str) or not record["run_id"]:
        problems.append(f"{label}: lacks a non-empty string 'run_id'")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        problems.append(f"{label}: 'ts' must be a non-negative number")
    if not isinstance(record.get("step"), str) or not record["step"]:
        problems.append(f"{label}: lacks a non-empty string 'step'")
    status = record.get("status")
    if status not in _STATUSES:
        problems.append(
            f"{label}: 'status' must be one of {sorted(_STATUSES)}, "
            f"got {status!r}"
        )
    elif status == "failed" and not isinstance(record.get("error"), str):
        problems.append(f"{label}: failed record lacks its 'error' string")
    duration = record.get("duration_s")
    if not isinstance(duration, (int, float)) or duration < 0:
        problems.append(f"{label}: 'duration_s' must be a non-negative number")
    run = record.get("run")
    if not isinstance(run, dict):
        problems.append(f"{label}: 'run' must be an object")
    else:
        for key in _RUN_KEYS:
            if key not in run:
                problems.append(f"{label}: run lacks {key!r}")
    host = record.get("host")
    if not isinstance(host, dict):
        problems.append(f"{label}: 'host' must be an object")
    else:
        for key in _HOST_KEYS:
            if key not in host:
                problems.append(f"{label}: host lacks {key!r}")
    return problems


def validate_file(path: str) -> tuple[list[dict], list[str]]:
    """Validate one ledger file; returns (parsed records, problems)."""
    try:
        raw = read_text_strict(path, remedy=_REMEDY)
    except LoudLoadError as exc:
        return [], [str(exc)]
    records: list[dict] = []
    problems: list[str] = []
    for lineno, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            continue
        label = f"{os.path.basename(path)}:{lineno}"
        try:
            record = json.loads(line)
        except ValueError:
            problems.append(
                f"{label}: not valid JSON (truncated append?); {_REMEDY}"
            )
            continue
        file_problems = _validate_record(record, label)
        problems.extend(file_problems)
        if not file_problems and isinstance(record, dict):
            records.append(record)
    return records, problems


def validate_dir(root: str) -> tuple[list[dict], list[str]]:
    """Validate every ``*.jsonl`` under a ledger directory."""
    if not os.path.isdir(root):
        return [], [f"{root} is not a directory"]
    files = sorted(
        name for name in os.listdir(root) if name.endswith(".jsonl")
    )
    if not files:
        return [], [f"{root} contains no *.jsonl ledger files"]
    records: list[dict] = []
    problems: list[str] = []
    for name in files:
        file_records, file_problems = validate_file(os.path.join(root, name))
        records.extend(file_records)
        problems.extend(file_problems)

    # Wall-anchored timestamps must be strictly increasing per run.
    by_run: dict[str, list[float]] = {}
    for record in records:
        if record.get("schema") == LEDGER_SCHEMA:
            by_run.setdefault(record["run_id"], []).append(record["ts"])
    for run_id, stamps in by_run.items():
        for a, b in zip(stamps, stamps[1:]):
            if b <= a:
                problems.append(
                    f"run {run_id}: timestamps not strictly increasing "
                    f"({b} after {a}) — records are not wall-anchored"
                )
                break
    return records, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "ledger", help="ledger directory (or a single .jsonl file)"
    )
    args = parser.parse_args(argv)

    if os.path.isfile(args.ledger):
        records, problems = validate_file(args.ledger)
        if not problems and not records:
            problems = [f"{args.ledger} contains no ledger records"]
    else:
        records, problems = validate_dir(args.ledger)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    runs = {record["run_id"] for record in records}
    steps = sorted({record["step"] for record in records})
    print(
        f"{args.ledger}: {len(records)} valid step record(s) across "
        f"{len(runs)} run(s) (steps: {', '.join(steps)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
