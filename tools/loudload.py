"""Loud, fail-fast file loading shared by the repo's validators.

Every validator guards an append-forever artifact (the benchmark
trajectory, pipeline traces, the run ledger), so a half-written file
must be *refused with a remedy*, never silently accepted or half-read.
This module is the one implementation of that refusal — the same three
diagnostics everywhere, each naming the path and what to do about it:

* unreadable file  → ``cannot read <path>: <errno>``;
* empty file       → ``<path> is empty — the file was truncated
  (interrupted write?); <remedy>``;
* unparseable JSON → ``<path> is not valid JSON (truncated or corrupt);
  <remedy>``.

Used by ``validate_trace.py`` and ``validate_ledger.py``; import with
the tools directory on ``sys.path`` (automatic when run as scripts).
"""

from __future__ import annotations

import json

__all__ = ["LoudLoadError", "read_text_strict", "load_json_strict"]


class LoudLoadError(Exception):
    """A file refused by the strict loaders; ``str()`` is the diagnostic."""


def read_text_strict(path: str, *, remedy: str) -> str:
    """The file's text, or :class:`LoudLoadError` naming path + remedy."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as exc:
        raise LoudLoadError(f"cannot read {path}: {exc}") from exc
    if not raw.strip():
        raise LoudLoadError(
            f"{path} is empty — the file was truncated (interrupted "
            f"write?); {remedy}"
        )
    return raw


def load_json_strict(path: str, *, remedy: str) -> object:
    """Parsed JSON from ``path``, or :class:`LoudLoadError` with remedy."""
    raw = read_text_strict(path, remedy=remedy)
    try:
        return json.loads(raw)
    except ValueError as exc:
        raise LoudLoadError(
            f"{path} is not valid JSON (truncated or corrupt); "
            f"{remedy}: {exc}"
        ) from exc
