"""Unit tests for the red-black tree map."""

import pytest

from repro.dicts import TreeMap
from repro.dicts.treemap import NODE_OVERHEAD_BYTES


def make_populated(n=100):
    tree = TreeMap()
    for i in range(n):
        tree.put(i * 7 % n, f"value-{i * 7 % n}")
    return tree


class TestBasicOperations:
    def test_empty_tree_has_len_zero(self):
        assert len(TreeMap()) == 0

    def test_get_on_empty_returns_default(self):
        tree = TreeMap()
        assert tree.get("missing") is None
        assert tree.get("missing", 42) == 42

    def test_put_then_get(self):
        tree = TreeMap()
        tree.put("alpha", 1)
        assert tree.get("alpha") == 1
        assert len(tree) == 1

    def test_put_overwrites_existing_key(self):
        tree = TreeMap()
        tree.put("k", 1)
        tree.put("k", 2)
        assert tree.get("k") == 2
        assert len(tree) == 1

    def test_contains(self):
        tree = make_populated(20)
        assert 5 in tree
        assert 100 not in tree

    def test_getitem_raises_keyerror_for_missing(self):
        tree = TreeMap()
        with pytest.raises(KeyError):
            tree["nope"]

    def test_setitem_and_getitem(self):
        tree = TreeMap()
        tree["x"] = 9
        assert tree["x"] == 9

    def test_falsy_values_are_stored_and_retrieved(self):
        tree = TreeMap()
        tree.put("zero", 0)
        tree.put("empty", "")
        assert tree.get("zero") == 0
        assert tree.get("empty") == ""
        assert "zero" in tree

    def test_clear_empties_and_is_reusable(self):
        tree = make_populated(50)
        tree.clear()
        assert len(tree) == 0
        assert tree.get(1) is None
        tree.put(1, "again")
        assert tree.get(1) == "again"


class TestOrderedBehaviour:
    def test_items_yield_sorted_order(self):
        tree = TreeMap()
        for key in [5, 3, 9, 1, 7, 2, 8]:
            tree.put(key, key * 10)
        assert [k for k, _ in tree.items()] == [1, 2, 3, 5, 7, 8, 9]

    def test_items_sorted_matches_items_for_tree(self):
        tree = make_populated(64)
        assert tree.items_sorted() == list(tree.items())

    def test_min_and_max_key(self):
        tree = TreeMap()
        assert tree.min_key() is None
        assert tree.max_key() is None
        for key in [42, 7, 99, 13]:
            tree.put(key, None)
        assert tree.min_key() == 7
        assert tree.max_key() == 99

    def test_floor_and_ceiling(self):
        tree = TreeMap()
        for key in [10, 20, 30]:
            tree.put(key, None)
        assert tree.floor_key(25) == 20
        assert tree.floor_key(20) == 20
        assert tree.floor_key(5) is None
        assert tree.ceiling_key(25) == 30
        assert tree.ceiling_key(30) == 30
        assert tree.ceiling_key(35) is None

    def test_string_keys_sorted_lexicographically(self):
        tree = TreeMap()
        for word in ["pear", "apple", "fig", "banana"]:
            tree.put(word, 1)
        assert list(tree.keys()) == ["apple", "banana", "fig", "pear"]


class TestRemoval:
    def test_remove_present_key(self):
        tree = make_populated(30)
        assert tree.remove(10) is True
        assert 10 not in tree
        assert len(tree) == 29

    def test_remove_absent_key_returns_false(self):
        tree = make_populated(10)
        assert tree.remove(999) is False
        assert len(tree) == 10

    def test_remove_all_keys_in_random_order(self):
        tree = make_populated(40)
        keys = [k for k, _ in tree.items()]
        for key in keys[::2] + keys[1::2]:
            assert tree.remove(key)
        assert len(tree) == 0

    def test_invariants_hold_after_interleaved_ops(self):
        tree = TreeMap()
        for i in range(200):
            tree.put((i * 37) % 101, i)
            if i % 3 == 0:
                tree.remove((i * 17) % 101)
            tree.check_invariants()


class TestInstrumentation:
    def test_inserts_counted(self):
        tree = TreeMap()
        for i in range(10):
            tree.put(i, i)
        assert tree.stats.inserts == 10
        assert tree.stats.updates == 0

    def test_updates_counted(self):
        tree = TreeMap()
        tree.put("a", 1)
        tree.put("a", 2)
        assert tree.stats.inserts == 1
        assert tree.stats.updates == 1

    def test_lookup_hit_miss_counters(self):
        tree = TreeMap()
        tree.put("a", 1)
        tree.get("a")
        tree.get("b")
        assert tree.stats.hits == 1
        assert tree.stats.misses == 1
        assert tree.stats.lookups == 2

    def test_comparisons_grow_logarithmically(self):
        small, large = TreeMap(), TreeMap()
        for i in range(16):
            small.put(i, i)
        for i in range(4096):
            large.put(i, i)
        small_snapshot = small.stats.copy()
        large_snapshot = large.stats.copy()
        small.get(7)
        large.get(2049)
        small_cost = small.stats.delta(small_snapshot).comparisons
        large_cost = large.stats.delta(large_snapshot).comparisons
        # log2(4096)=12 vs log2(16)=4: large lookups cost more but far less
        # than the 256x size ratio.
        assert small_cost < large_cost <= small_cost * 8

    def test_resident_bytes_tracks_entry_count(self):
        tree = TreeMap()
        for i in range(100):
            tree.put(i, i)
        assert tree.resident_bytes() == 100 * NODE_OVERHEAD_BYTES

    def test_resident_bytes_counts_string_keys(self):
        tree = TreeMap()
        tree.put("abcdef", 1)
        assert tree.resident_bytes() == NODE_OVERHEAD_BYTES + 6

    def test_stats_delta(self):
        tree = TreeMap()
        tree.put(1, 1)
        before = tree.stats.copy()
        tree.put(2, 2)
        delta = tree.stats.delta(before)
        assert delta.inserts == 1


class TestIncrement:
    def test_increment_from_missing(self):
        tree = TreeMap()
        assert tree.increment("word") == 1
        assert tree.get("word") == 1

    def test_increment_accumulates(self):
        tree = TreeMap()
        for _ in range(5):
            tree.increment("word")
        assert tree.get("word") == 5

    def test_increment_with_amount(self):
        tree = TreeMap()
        tree.increment("w", 3)
        assert tree.increment("w", 4) == 7
