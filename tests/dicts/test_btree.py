"""Unit and property tests for the B-tree map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dicts import BTreeMap, make_dict
from repro.dicts.btree import DEFAULT_ORDER
from repro.errors import ConfigurationError


class TestBasicOperations:
    def test_empty(self):
        tree = BTreeMap()
        assert len(tree) == 0
        assert tree.get("x") is None

    def test_put_get_roundtrip(self):
        tree = BTreeMap(order=3)
        for i in range(200):
            tree.put(i, i * 10)
        for i in range(200):
            assert tree.get(i) == i * 10
        assert len(tree) == 200

    def test_overwrite(self):
        tree = BTreeMap(order=2)
        tree.put("k", 1)
        tree.put("k", 2)
        assert tree.get("k") == 2
        assert len(tree) == 1

    def test_overwrite_key_promoted_to_internal_node(self):
        tree = BTreeMap(order=2)
        for i in range(30):
            tree.put(i, i)
        # Overwrite every key, including ones living in internal nodes.
        for i in range(30):
            tree.put(i, i + 100)
        for i in range(30):
            assert tree.get(i) == i + 100
        assert len(tree) == 30
        tree.check_invariants()

    def test_contains(self):
        tree = BTreeMap(order=2)
        tree.put(5, None)
        assert 5 in tree
        assert 6 not in tree

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            BTreeMap(order=1)

    def test_clear(self):
        tree = BTreeMap(order=2)
        for i in range(50):
            tree.put(i, i)
        tree.clear()
        assert len(tree) == 0
        tree.put(1, "again")
        assert tree.get(1) == "again"

    def test_increment(self):
        tree = BTreeMap()
        tree.increment("word")
        tree.increment("word", 4)
        assert tree.get("word") == 5


class TestOrderedBehaviour:
    def test_items_sorted_order(self):
        tree = BTreeMap(order=2)
        for key in [9, 3, 7, 1, 5, 8, 2, 6, 4, 0]:
            tree.put(key, key)
        assert [k for k, _ in tree.items()] == list(range(10))

    def test_items_sorted_is_free_walk(self):
        tree = BTreeMap(order=3)
        for key in ["pear", "apple", "fig"]:
            tree.put(key, 1)
        assert [k for k, _ in tree.items_sorted()] == ["apple", "fig", "pear"]


class TestRemoval:
    def test_remove_leaf_key(self):
        tree = BTreeMap(order=2)
        for i in range(20):
            tree.put(i, i)
        assert tree.remove(13)
        assert 13 not in tree
        assert len(tree) == 19
        tree.check_invariants()

    def test_remove_absent(self):
        tree = BTreeMap(order=2)
        tree.put(1, 1)
        assert tree.remove(99) is False
        assert len(tree) == 1

    def test_remove_all(self):
        tree = BTreeMap(order=2)
        keys = [(i * 37) % 101 for i in range(101)]
        for key in keys:
            tree.put(key, key)
        for key in sorted(set(keys)):
            assert tree.remove(key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_interleaved_ops_keep_invariants(self):
        tree = BTreeMap(order=2)
        for i in range(300):
            tree.put((i * 53) % 127, i)
            if i % 3 == 0:
                tree.remove((i * 29) % 127)
            tree.check_invariants()


class TestInstrumentation:
    def test_probes_counted_per_node_visit(self):
        tree = BTreeMap(order=16)
        for i in range(1000):
            tree.put(i, i)
        before = tree.stats.copy()
        tree.get(777)
        delta = tree.stats.delta(before)
        # 1000 keys at order 16 is a very shallow tree: few node visits.
        assert 1 <= delta.probes <= 4

    def test_fewer_pointer_chases_than_red_black_tree(self):
        """The design point: O(log_B n) node visits vs O(log2 n)."""
        from repro.dicts import TreeMap

        btree, rbtree = BTreeMap(order=16), TreeMap()
        for i in range(4096):
            btree.put(i, i)
            rbtree.put(i, i)
        b_before, r_before = btree.stats.copy(), rbtree.stats.copy()
        for probe in range(0, 4096, 64):
            btree.get(probe)
            rbtree.get(probe)
        b_visits = btree.stats.delta(b_before).probes
        r_visits = rbtree.stats.delta(r_before).comparisons
        assert b_visits * 3 < r_visits

    def test_split_moves_counted(self):
        tree = BTreeMap(order=2)
        for i in range(100):
            tree.put(i, i)
        assert tree.stats.rehash_moves > 0

    def test_resident_bytes_grow_with_nodes(self):
        small, large = BTreeMap(order=2), BTreeMap(order=2)
        large_keys = 500
        for i in range(large_keys):
            large.put(i, i)
        small.put(1, 1)
        assert large.resident_bytes() > small.resident_bytes()

    def test_factory_and_profile_registered(self):
        from repro.dicts import BTREE_PROFILE, available_kinds, profile_for_kind

        assert "btree" in available_kinds()
        assert isinstance(make_dict("btree"), BTreeMap)
        assert profile_for_kind("btree") is BTREE_PROFILE


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "remove"]),
                st.integers(-30, 30),
                st.integers(0, 100),
            ),
            max_size=150,
        ),
        st.integers(2, 6),
    )
    def test_matches_model_dict(self, operations, order):
        tree = BTreeMap(order=order)
        model = {}
        for op, key, value in operations:
            if op == "put":
                tree.put(key, value)
                model[key] = value
            else:
                assert tree.remove(key) == (key in model)
                model.pop(key, None)
        assert tree.to_dict() == model
        assert len(tree) == len(model)
        tree.check_invariants()

    @given(st.lists(st.text(max_size=5), max_size=80))
    def test_agrees_with_other_structures_on_counting(self, words):
        from repro.dicts import HashMap, TreeMap

        btree, rbtree, table = BTreeMap(order=3), TreeMap(), HashMap(reserve=4)
        for word in words:
            btree.increment(word)
            rbtree.increment(word)
            table.increment(word)
        assert btree.items_sorted() == rbtree.items_sorted() == table.items_sorted()

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    def test_iteration_sorted(self, keys):
        tree = BTreeMap(order=4)
        for key in keys:
            tree.put(key, None)
        walked = [k for k, _ in tree.items()]
        assert walked == sorted(set(keys))
