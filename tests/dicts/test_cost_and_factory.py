"""Tests for dictionary cost profiles, the counting adapter and the factory."""

import pytest

from repro.dicts import (
    BUILTIN_PROFILE,
    HASHMAP_PROFILE,
    TREEMAP_PROFILE,
    BuiltinDict,
    CountingDict,
    HashMap,
    OpStats,
    TreeMap,
    available_kinds,
    count_tokens,
    make_dict,
    profile_for_kind,
    register_dict_kind,
)
from repro.errors import ConfigurationError


class TestCostProfiles:
    def test_profile_lookup_by_kind(self):
        assert profile_for_kind("map") is TREEMAP_PROFILE
        assert profile_for_kind("unordered_map") is HASHMAP_PROFILE
        assert profile_for_kind("dict") is BUILTIN_PROFILE

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            profile_for_kind("splay_tree")

    def test_empty_stats_cost_zero(self):
        stats = OpStats()
        for profile in (TREEMAP_PROFILE, HASHMAP_PROFILE):
            assert profile.cpu_seconds(stats) == 0.0
            assert profile.memory_traffic(stats) == 0

    def test_tree_cost_driven_by_comparisons(self):
        stats = OpStats(comparisons=1000)
        assert TREEMAP_PROFILE.cpu_seconds(stats) == pytest.approx(
            1000 * TREEMAP_PROFILE.comparison_ns * 1e-9
        )
        # Probes never occur on a tree; its profile must not charge them.
        assert TREEMAP_PROFILE.probe_ns == 0.0

    def test_hash_cost_driven_by_probes_and_rehashes(self):
        stats = OpStats(probes=1000, rehash_moves=100)
        expected = (
            1000 * HASHMAP_PROFILE.probe_ns + 100 * HASHMAP_PROFILE.rehash_move_ns
        ) * 1e-9
        assert HASHMAP_PROFILE.cpu_seconds(stats) == pytest.approx(expected)

    def test_hash_memory_traffic_exceeds_tree_per_event(self):
        # The sparse-array effect: a probe streams more DRAM than a tree
        # comparison touches.
        assert HASHMAP_PROFILE.bytes_per_probe > TREEMAP_PROFILE.bytes_per_comparison

    def test_real_workload_costs_are_positive(self):
        table = HashMap(reserve=8)
        for i in range(500):
            table.increment(i % 50)
        cpu = HASHMAP_PROFILE.cpu_seconds(table.stats)
        mem = HASHMAP_PROFILE.memory_traffic(table.stats)
        assert cpu > 0
        assert mem > 0

    def test_stats_merge(self):
        a = OpStats(inserts=2, probes=5)
        b = OpStats(inserts=3, lookups=1)
        a.merge(b)
        assert a.inserts == 5
        assert a.probes == 5
        assert a.lookups == 1

    def test_total_ops(self):
        stats = OpStats(inserts=1, updates=2, lookups=3)
        assert stats.total_ops == 6


class TestCountingDict:
    def test_count_all(self):
        counter = CountingDict(TreeMap())
        n = counter.count_all(["a", "b", "a", "c", "a"])
        assert n == 5
        assert counter.get("a") == 3
        assert counter.get("b") == 1
        assert counter.get("missing") == 0

    def test_merge_counts(self):
        left = CountingDict(TreeMap())
        right = CountingDict(HashMap())
        left.count_all(["x", "y"])
        right.count_all(["y", "z"])
        left.merge_counts(right)
        assert left.get("x") == 1
        assert left.get("y") == 2
        assert left.get("z") == 1

    def test_total(self):
        counter = CountingDict(BuiltinDict())
        counter.count_all("a b c a".split())
        assert counter.total() == 4

    def test_kind_passthrough(self):
        assert CountingDict(TreeMap()).kind == "map"
        assert CountingDict(HashMap()).kind == "unordered_map"

    def test_count_tokens_helper(self):
        backing = TreeMap()
        assert count_tokens(iter(["a", "a", "b"]), backing) == 3
        assert backing.get("a") == 2


class TestFactory:
    def test_available_kinds(self):
        kinds = available_kinds()
        assert {"map", "unordered_map", "dict"} <= set(kinds)

    def test_make_each_kind(self):
        assert isinstance(make_dict("map"), TreeMap)
        assert isinstance(make_dict("unordered_map"), HashMap)
        assert isinstance(make_dict("dict"), BuiltinDict)

    def test_reserve_passed_to_hashmap(self):
        small = make_dict("unordered_map", reserve=8)
        large = make_dict("unordered_map", reserve=4096)
        assert large.capacity > small.capacity

    def test_unknown_kind_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            make_dict("splay_tree")

    def test_register_custom_kind(self):
        register_dict_kind("custom-test", lambda reserve: BuiltinDict())
        try:
            assert isinstance(make_dict("custom-test"), BuiltinDict)
            assert "custom-test" in available_kinds()
        finally:
            # Keep the global registry clean for other tests.
            from repro.dicts import factory

            del factory._REGISTRY["custom-test"]

    def test_register_empty_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            register_dict_kind("", lambda reserve: BuiltinDict())
