"""Property-based tests: both dictionary implementations against a model."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dicts import BTreeMap, BuiltinDict, HashMap, TreeMap

keys = st.one_of(st.integers(-50, 50), st.text(min_size=0, max_size=6))
values = st.integers(-1000, 1000)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("remove"), keys, st.none()),
        st.tuples(st.just("increment"), keys, st.integers(1, 5)),
    ),
    max_size=200,
)


def apply_ops(impl, operations):
    model = {}
    for op, key, value in operations:
        if op == "put":
            impl.put(key, value)
            model[key] = value
        elif op == "remove":
            assert impl.remove(key) == (key in model)
            model.pop(key, None)
        else:
            impl.increment(key, value)
            model[key] = model.get(key, 0) + value
    return model


class TestAgainstModel:
    @given(ops)
    def test_treemap_matches_builtin_dict(self, operations):
        # Mixed int/str keys are not mutually orderable; keep one type per run.
        operations = [o for o in operations if isinstance(o[1], int)]
        tree = TreeMap()
        model = apply_ops(tree, operations)
        assert tree.to_dict() == model
        assert len(tree) == len(model)
        tree.check_invariants()

    @given(ops)
    def test_hashmap_matches_builtin_dict(self, operations):
        table = HashMap(reserve=4)
        model = apply_ops(table, operations)
        assert table.to_dict() == model
        assert len(table) == len(model)
        table.check_invariants()

    @given(ops)
    def test_builtin_wrapper_matches_builtin_dict(self, operations):
        wrapped = BuiltinDict()
        model = apply_ops(wrapped, operations)
        assert wrapped.to_dict() == model

    @given(st.lists(st.integers(-100, 100), max_size=100))
    def test_tree_iteration_is_sorted(self, items):
        tree = TreeMap()
        for item in items:
            tree.put(item, None)
        observed = [k for k, _ in tree.items()]
        assert observed == sorted(set(items))

    @given(st.lists(st.text(max_size=5), max_size=100))
    def test_items_sorted_agrees_across_implementations(self, words):
        tree, table = TreeMap(), HashMap(reserve=4)
        for word in words:
            tree.increment(word)
            table.increment(word)
        assert tree.items_sorted() == table.items_sorted()

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
    def test_remove_everything_leaves_empty_structures(self, items):
        for impl in (TreeMap(), HashMap(reserve=4)):
            for item in items:
                impl.put(item, item)
            for item in set(items):
                assert impl.remove(item)
            assert len(impl) == 0
            assert list(impl.items()) == []


class DictStateMachine(RuleBasedStateMachine):
    """Stateful check: all structures stay equivalent under any op order."""

    def __init__(self):
        super().__init__()
        self.tree = TreeMap()
        self.table = HashMap(reserve=4)
        self.btree = BTreeMap(order=2)
        self.model = {}

    @rule(key=st.integers(-20, 20), value=values)
    def put(self, key, value):
        self.tree.put(key, value)
        self.table.put(key, value)
        self.btree.put(key, value)
        self.model[key] = value

    @rule(key=st.integers(-20, 20))
    def remove(self, key):
        expected = key in self.model
        assert self.tree.remove(key) == expected
        assert self.table.remove(key) == expected
        assert self.btree.remove(key) == expected
        self.model.pop(key, None)

    @rule(key=st.integers(-20, 20))
    def lookup(self, key):
        expected = self.model.get(key, "absent")
        assert self.tree.get(key, "absent") == expected
        assert self.table.get(key, "absent") == expected
        assert self.btree.get(key, "absent") == expected

    @invariant()
    def sizes_agree(self):
        assert len(self.tree) == len(self.model)
        assert len(self.table) == len(self.model)
        assert len(self.btree) == len(self.model)

    @invariant()
    def structures_valid(self):
        self.tree.check_invariants()
        self.table.check_invariants()
        self.btree.check_invariants()


DictStateMachine.TestCase.settings = settings(max_examples=25, stateful_step_count=30)
TestDictStateMachine = DictStateMachine.TestCase
