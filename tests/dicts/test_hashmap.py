"""Unit tests for the open-addressing hash map."""

import pytest

from repro.dicts import HashMap
from repro.dicts.hashmap import MAX_LOAD_FACTOR, SLOT_BYTES
from repro.errors import ConfigurationError


class TestBasicOperations:
    def test_empty_map(self):
        table = HashMap()
        assert len(table) == 0
        assert table.get("x") is None

    def test_put_then_get(self):
        table = HashMap()
        table.put("alpha", 1)
        assert table.get("alpha") == 1
        assert len(table) == 1

    def test_put_overwrites(self):
        table = HashMap()
        table.put("k", 1)
        table.put("k", 2)
        assert table.get("k") == 2
        assert len(table) == 1

    def test_contains(self):
        table = HashMap()
        table.put(5, "five")
        assert 5 in table
        assert 6 not in table

    def test_many_keys_roundtrip(self):
        table = HashMap(reserve=8)
        for i in range(5000):
            table.put(f"key-{i}", i)
        for i in range(0, 5000, 97):
            assert table.get(f"key-{i}") == i
        assert len(table) == 5000

    def test_clear_resets_capacity(self):
        table = HashMap(reserve=8)
        for i in range(1000):
            table.put(i, i)
        grown = table.capacity
        table.clear()
        assert len(table) == 0
        assert table.capacity < grown
        table.put("again", 1)
        assert table.get("again") == 1

    def test_invalid_reserve_rejected(self):
        with pytest.raises(ConfigurationError):
            HashMap(reserve=0)

    def test_falsy_values(self):
        table = HashMap()
        table.put("zero", 0)
        assert table.get("zero") == 0
        assert "zero" in table


class TestRemoval:
    def test_remove_present(self):
        table = HashMap()
        table.put("a", 1)
        assert table.remove("a") is True
        assert "a" not in table
        assert len(table) == 0

    def test_remove_absent(self):
        table = HashMap()
        assert table.remove("a") is False

    def test_reinsert_after_remove_uses_tombstone(self):
        table = HashMap(reserve=8)
        for i in range(5):
            table.put(i, i)
        table.remove(3)
        table.put(3, 33)
        assert table.get(3) == 33
        table.check_invariants()

    def test_probe_chain_survives_tombstones(self):
        # Keys engineered to collide in a small table: integers hash to
        # themselves, so i and i+capacity share a slot.
        table = HashMap(reserve=8)
        cap = table.capacity
        table.put(0, "a")
        table.put(cap, "b")   # collides with 0, probes to next slot
        table.put(2 * cap, "c")
        table.remove(cap)     # tombstone in the middle of the chain
        assert table.get(2 * cap) == "c"
        assert table.get(0) == "a"


class TestGrowth:
    def test_grows_beyond_reserve(self):
        table = HashMap(reserve=8)
        initial = table.capacity
        for i in range(initial * 2):
            table.put(i, i)
        assert table.capacity > initial
        assert len(table) == initial * 2

    def test_load_factor_bounded(self):
        table = HashMap(reserve=8)
        for i in range(10_000):
            table.put(i, i)
            assert table.load_factor <= MAX_LOAD_FACTOR + 1e-9

    def test_rehash_counters(self):
        table = HashMap(reserve=8)
        for i in range(1000):
            table.put(i, i)
        assert table.stats.rehashes > 0
        assert table.stats.rehash_moves > 0

    def test_presized_table_avoids_rehash(self):
        table = HashMap(reserve=4096)
        for i in range(4000):
            table.put(i, i)
        assert table.stats.rehashes == 0

    def test_capacity_is_power_of_two(self):
        for reserve in (1, 7, 100, 4096):
            table = HashMap(reserve=reserve)
            assert table.capacity & (table.capacity - 1) == 0

    def test_invariants_through_growth_and_removal(self):
        table = HashMap(reserve=8)
        for i in range(500):
            table.put(i, i)
            if i % 5 == 0:
                table.remove(i // 2)
            table.check_invariants()


class TestInstrumentationAndMemory:
    def test_probe_counter_increases(self):
        table = HashMap()
        table.put("a", 1)
        table.get("a")
        assert table.stats.probes >= 2

    def test_resident_bytes_scales_with_capacity_not_size(self):
        sparse = HashMap(reserve=4096)
        sparse.put("only", 1)
        compact = HashMap(reserve=1)
        compact.put("only", 1)
        assert sparse.resident_bytes() > compact.resident_bytes() * 50
        assert sparse.resident_bytes() >= sparse.capacity * SLOT_BYTES

    def test_resident_bytes_counts_string_keys(self):
        table = HashMap(reserve=1)
        base = table.resident_bytes()
        table.put("abcdef", 1)
        assert table.resident_bytes() == base + 6

    def test_items_sorted_sorts_hash_entries(self):
        table = HashMap()
        for key in [9, 1, 5, 3]:
            table.put(key, key)
        assert [k for k, _ in table.items_sorted()] == [1, 3, 5, 9]

    def test_hit_miss_counters(self):
        table = HashMap()
        table.put("a", 1)
        table.get("a")
        table.get("b")
        assert table.stats.hits == 1
        assert table.stats.misses == 1


class TestIncrement:
    def test_increment_counts_tokens(self):
        table = HashMap()
        for token in ["the", "cat", "the"]:
            table.increment(token)
        assert table.get("the") == 2
        assert table.get("cat") == 1
