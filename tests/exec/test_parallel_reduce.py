"""Tests for the tree-reduction primitive."""

import pytest

from repro.exec import SimScheduler, TaskCost, paper_node
from repro.exec.parallel import parallel_reduce


def summing_combine(cost_s=1.0):
    def combine(a, b, cost):
        cost.cpu_s += cost_s
        return a + b

    return combine


class TestParallelReduce:
    def test_reduces_to_single_value(self):
        scheduler = SimScheduler(paper_node(4))
        result = parallel_reduce(scheduler, range(10), summing_combine())
        assert result.values == [sum(range(10))]

    def test_empty_input(self):
        scheduler = SimScheduler(paper_node(4))
        result = parallel_reduce(scheduler, [], summing_combine())
        assert result.values == []
        assert result.timing.elapsed_s == 0.0

    def test_single_item_costs_nothing(self):
        scheduler = SimScheduler(paper_node(4))
        result = parallel_reduce(scheduler, [42], summing_combine())
        assert result.values == [42]
        assert result.timing.elapsed_s == 0.0

    def test_log_depth_critical_path(self):
        """8 items with 1s merges on 8 cores: 3 levels = 3s, not 7s."""
        scheduler = SimScheduler(paper_node(8))
        result = parallel_reduce(scheduler, [1] * 8, summing_combine(1.0))
        assert result.values == [8]
        assert result.timing.elapsed_s == pytest.approx(3.0)
        assert result.timing.totals.cpu_s == pytest.approx(7.0)

    def test_serial_on_one_worker(self):
        scheduler = SimScheduler(paper_node(8))
        result = parallel_reduce(
            scheduler, [1] * 8, summing_combine(1.0), workers=1
        )
        # All 7 merges serialize: 4 + 2 + 1 seconds by level.
        assert result.timing.elapsed_s == pytest.approx(7.0)

    def test_odd_item_count(self):
        scheduler = SimScheduler(paper_node(4))
        result = parallel_reduce(scheduler, [1, 2, 3], summing_combine())
        assert result.values == [6]

    def test_noncommutative_combine_preserves_order(self):
        scheduler = SimScheduler(paper_node(4))

        def concat(a, b, cost):
            return a + b

        result = parallel_reduce(scheduler, ["a", "b", "c", "d"], concat)
        assert result.values == ["abcd"]
