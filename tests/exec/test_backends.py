"""Real execution backends: chunking, ordering, errors, pool lifecycle."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec.inline import SequentialBackend, ThreadBackend, apply_chunk
from repro.exec.process import (
    BACKEND_CHOICES,
    ProcessBackend,
    make_backend,
)

# Module-level so the process backend can pickle them by reference.
_WORKER_STATE = {}


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x


def _install_offset(offset):
    _WORKER_STATE["offset"] = offset


def _add_offset(x):
    return x + _WORKER_STATE["offset"]


class TestApplyChunk:
    def test_applies_in_order(self):
        assert apply_chunk(_square, [1, 2, 3]) == [1, 4, 9]


class TestSequentialBackend:
    def test_map(self):
        assert SequentialBackend().map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_configure_runs_inline(self):
        backend = SequentialBackend()
        backend.configure(_install_offset, (10,))
        assert backend.map(_add_offset, [1, 2]) == [11, 12]


class TestThreadBackend:
    def test_chunked_map_preserves_order(self):
        with ThreadBackend(4) as backend:
            assert backend.map(_square, range(100)) == [x * x for x in range(100)]

    def test_explicit_grain(self):
        with ThreadBackend(2) as backend:
            assert backend.map(_square, range(10), grain=3) == [
                x * x for x in range(10)
            ]

    def test_rejects_bad_grain(self):
        with ThreadBackend(2) as backend:
            with pytest.raises(ConfigurationError):
                backend.map(_square, range(10), grain=0)

    def test_exception_propagates_and_pool_survives(self):
        backend = ThreadBackend(2)
        with pytest.raises(ValueError, match="boom at 3"):
            backend.map(_fail_on_three, range(10), grain=1)
        # The pool is still usable after a failed map ...
        assert backend.map(_square, range(4), grain=1) == [0, 1, 4, 9]
        # ... and close is safe afterwards, twice.
        backend.close()
        backend.close()

    def test_close_after_failed_map(self):
        backend = ThreadBackend(2)
        with pytest.raises(ValueError):
            backend.map(_fail_on_three, range(10), grain=1)
        backend.close()
        assert backend._pool is None

    def test_pool_reused_across_maps(self):
        backend = ThreadBackend(2)
        backend.map(_square, range(10))
        pool = backend._pool
        backend.map(_square, range(10))
        assert backend._pool is pool
        backend.close()

    def test_configure_runs_inline(self):
        with ThreadBackend(2) as backend:
            backend.configure(_install_offset, (5,))
            assert backend.map(_add_offset, range(10), grain=2) == [
                x + 5 for x in range(10)
            ]


class TestProcessBackend:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(0)

    def test_map_preserves_order(self):
        with ProcessBackend(2) as backend:
            assert backend.map(_square, range(50)) == [x * x for x in range(50)]

    def test_empty_map_is_trivial(self):
        with ProcessBackend(2) as backend:
            assert backend.map(_square, []) == []
            assert backend._pool is None  # no pool was ever started

    def test_initializer_ships_state_once(self):
        with ProcessBackend(2) as backend:
            backend.configure(_install_offset, (100,))
            assert backend.map(_add_offset, range(10), grain=2) == [
                x + 100 for x in range(10)
            ]

    def test_configure_same_state_keeps_pool(self):
        with ProcessBackend(2) as backend:
            args = (7,)
            backend.configure(_install_offset, args)
            backend.map(_add_offset, [1])
            pool = backend._pool
            backend.configure(_install_offset, args)
            assert backend._pool is pool
            backend.configure(_install_offset, (8,))
            assert backend._pool is None  # recycled for the new state
            assert backend.map(_add_offset, [1]) == [9]

    def test_pool_reused_across_maps(self):
        with ProcessBackend(2) as backend:
            backend.map(_square, range(10))
            pool = backend._pool
            assert backend.map(_square, range(10)) == [x * x for x in range(10)]
            assert backend._pool is pool

    def test_worker_exception_propagates(self):
        backend = ProcessBackend(2)
        try:
            with pytest.raises(ValueError, match="boom at 3"):
                backend.map(_fail_on_three, range(10), grain=1)
            # Pool survives an ordinary task exception.
            assert backend.map(_square, range(4)) == [0, 1, 4, 9]
        finally:
            backend.close()
        backend.close()  # idempotent


class TestMakeBackend:
    def test_choices(self):
        assert BACKEND_CHOICES == ("sequential", "threads", "processes")

    def test_builds_each_kind(self):
        assert isinstance(make_backend("sequential"), SequentialBackend)
        threads = make_backend("threads", 3)
        assert isinstance(threads, ThreadBackend) and threads.workers == 3
        processes = make_backend("processes", 2)
        assert isinstance(processes, ProcessBackend) and processes.workers == 2
        processes.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_backend("gpu", 2)
