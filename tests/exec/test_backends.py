"""Real execution backends: chunking, ordering, errors, pool lifecycle."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError
from repro.exec.inline import SequentialBackend, ThreadBackend, apply_chunk
from repro.exec.process import (
    BACKEND_CHOICES,
    ProcessBackend,
    make_backend,
)

# Module-level so the process backend can pickle them by reference.
_WORKER_STATE = {}


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x


def _install_offset(offset):
    _WORKER_STATE["offset"] = offset


def _poison_or_touch(item):
    """Raise on the poison item; otherwise slowly touch a marker file."""
    kind, path = item
    if kind == "poison":
        raise ValueError("poisoned chunk")
    time.sleep(0.1)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("ran")
    return path


def _poison_items(tmp_path, n_markers):
    """A poison chunk followed by marker chunks that record having run."""
    return [("poison", "")] + [
        ("marker", str(tmp_path / f"marker-{i:02d}")) for i in range(n_markers)
    ]


def _add_offset(x):
    return x + _WORKER_STATE["offset"]


class TestApplyChunk:
    def test_applies_in_order(self):
        assert apply_chunk(_square, [1, 2, 3]) == [1, 4, 9]


class TestSequentialBackend:
    def test_map(self):
        assert SequentialBackend().map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_configure_runs_inline(self):
        backend = SequentialBackend()
        backend.configure(_install_offset, (10,))
        assert backend.map(_add_offset, [1, 2]) == [11, 12]


class TestThreadBackend:
    def test_chunked_map_preserves_order(self):
        with ThreadBackend(4) as backend:
            assert backend.map(_square, range(100)) == [x * x for x in range(100)]

    def test_explicit_grain(self):
        with ThreadBackend(2) as backend:
            assert backend.map(_square, range(10), grain=3) == [
                x * x for x in range(10)
            ]

    def test_rejects_bad_grain(self):
        with ThreadBackend(2) as backend:
            with pytest.raises(ConfigurationError):
                backend.map(_square, range(10), grain=0)

    def test_exception_propagates_and_pool_survives(self):
        backend = ThreadBackend(2)
        with pytest.raises(ValueError, match="boom at 3"):
            backend.map(_fail_on_three, range(10), grain=1)
        # The pool is still usable after a failed map ...
        assert backend.map(_square, range(4), grain=1) == [0, 1, 4, 9]
        # ... and close is safe afterwards, twice.
        backend.close()
        backend.close()

    def test_close_after_failed_map(self):
        backend = ThreadBackend(2)
        with pytest.raises(ValueError):
            backend.map(_fail_on_three, range(10), grain=1)
        backend.close()
        assert backend._pool is None

    def test_pool_reused_across_maps(self):
        backend = ThreadBackend(2)
        backend.map(_square, range(10))
        pool = backend._pool
        backend.map(_square, range(10))
        assert backend._pool is pool
        backend.close()

    def test_configure_runs_inline(self):
        with ThreadBackend(2) as backend:
            backend.configure(_install_offset, (5,))
            assert backend.map(_add_offset, range(10), grain=2) == [
                x + 5 for x in range(10)
            ]

    def test_failure_cancels_chunks_submitted_after_it(self, tmp_path):
        items = _poison_items(tmp_path, n_markers=24)
        backend = ThreadBackend(2)
        try:
            with pytest.raises(ValueError, match="poisoned chunk"):
                backend.map(_poison_or_touch, items, grain=1)
        finally:
            backend.close()  # waits out chunks that had already started
        # Only chunks a worker had picked up before the poison surfaced may
        # finish; everything still queued behind them must be cancelled.
        touched = len(list(tmp_path.iterdir()))
        assert touched <= 4, f"{touched} marker chunks ran after the failure"

    def test_map_stream_matches_map(self):
        with ThreadBackend(3) as backend:
            assert backend.map_stream(_square, iter(range(20))) == [
                x * x for x in range(20)
            ]

    def test_map_stream_failure_cancels_queued_tasks(self, tmp_path):
        items = _poison_items(tmp_path, n_markers=24)
        backend = ThreadBackend(2)
        try:
            with pytest.raises(ValueError, match="poisoned chunk"):
                backend.map_stream(_poison_or_touch, iter(items))
        finally:
            backend.close()
        touched = len(list(tmp_path.iterdir()))
        assert touched <= 4, f"{touched} queued tasks ran after the failure"

    def test_map_stream_producer_error_cancels_queued_tasks(self, tmp_path):
        def producer():
            for item in _poison_items(tmp_path, n_markers=24)[1:]:
                yield item
            raise RuntimeError("producer died")

        backend = ThreadBackend(2)
        try:
            with pytest.raises(RuntimeError, match="producer died"):
                backend.map_stream(_poison_or_touch, producer())
        finally:
            backend.close()
        touched = len(list(tmp_path.iterdir()))
        assert touched <= 4, f"{touched} tasks ran after the producer failed"


class TestProcessBackend:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(0)

    def test_map_preserves_order(self):
        with ProcessBackend(2) as backend:
            assert backend.map(_square, range(50)) == [x * x for x in range(50)]

    def test_empty_map_is_trivial(self):
        with ProcessBackend(2) as backend:
            assert backend.map(_square, []) == []
            assert backend._pool is None  # no pool was ever started

    def test_initializer_ships_state_once(self):
        with ProcessBackend(2) as backend:
            backend.configure(_install_offset, (100,))
            assert backend.map(_add_offset, range(10), grain=2) == [
                x + 100 for x in range(10)
            ]

    def test_configure_same_state_keeps_pool(self):
        with ProcessBackend(2) as backend:
            args = (7,)
            backend.configure(_install_offset, args)
            backend.map(_add_offset, [1])
            pool = backend._pool
            backend.configure(_install_offset, args)
            assert backend._pool is pool
            backend.configure(_install_offset, (8,))
            assert backend._pool is None  # recycled for the new state
            assert backend.map(_add_offset, [1]) == [9]

    def test_pool_reused_across_maps(self):
        with ProcessBackend(2) as backend:
            backend.map(_square, range(10))
            pool = backend._pool
            assert backend.map(_square, range(10)) == [x * x for x in range(10)]
            assert backend._pool is pool

    def test_worker_exception_propagates(self):
        backend = ProcessBackend(2)
        try:
            with pytest.raises(ValueError, match="boom at 3"):
                backend.map(_fail_on_three, range(10), grain=1)
            # Pool survives an ordinary task exception.
            assert backend.map(_square, range(4)) == [0, 1, 4, 9]
        finally:
            backend.close()
        backend.close()  # idempotent

    def test_failure_cancels_chunks_submitted_after_it(self, tmp_path):
        n_markers = 24
        items = _poison_items(tmp_path, n_markers)
        backend = ProcessBackend(2)
        try:
            with pytest.raises(ValueError, match="poisoned chunk"):
                backend.map(_poison_or_touch, items, grain=1)
        finally:
            backend.close()  # waits out chunks that had already started
        # ProcessPoolExecutor pre-feeds ~workers+1 chunks into its call
        # queue, and those can no longer be cancelled — but the long tail
        # behind them must never run once the poison has surfaced.
        touched = len(list(tmp_path.iterdir()))
        assert touched < n_markers, "every chunk ran despite the failure"
        assert touched <= 8, f"{touched} marker chunks ran after the failure"

    def test_map_stream_matches_map(self):
        with ProcessBackend(2) as backend:
            assert backend.map_stream(_square, iter(range(20))) == [
                x * x for x in range(20)
            ]

    def test_map_stream_micro_batches_submissions(self):
        # The regression this guards: one pickled task per *item* (100
        # round trips for 100 items). With micro-batching, 2 workers get
        # a default grain of auto_grain(256, 2) = 16 → ceil(100/16) = 7
        # submitted tasks, while results stay ordered and complete.
        with ProcessBackend(2) as backend:
            assert backend.map_stream(_square, iter(range(100))) == [
                x * x for x in range(100)
            ]
            assert backend.ipc.total().tasks == 7

    def test_map_stream_explicit_grain_controls_task_count(self):
        with ProcessBackend(2) as backend:
            assert backend.map_stream(_square, iter(range(10)), grain=1) == [
                x * x for x in range(10)
            ]
            assert backend.ipc.total().tasks == 10
            with pytest.raises(ConfigurationError):
                backend.map_stream(_square, iter(range(4)), grain=0)

    def test_map_accounts_pickled_bytes(self):
        with ProcessBackend(2) as backend:
            backend.map(_square, range(20), grain=5)
            total = backend.ipc.total()
            assert total.tasks == 4
            assert total.task_pickle_bytes > 0
            assert total.result_pickle_bytes > 0


class TestMakeBackend:
    def test_choices(self):
        assert BACKEND_CHOICES == ("sequential", "threads", "processes")

    def test_builds_each_kind(self):
        assert isinstance(make_backend("sequential"), SequentialBackend)
        threads = make_backend("threads", 3)
        assert isinstance(threads, ThreadBackend) and threads.workers == 3
        processes = make_backend("processes", 2)
        assert isinstance(processes, ProcessBackend) and processes.workers == 2
        processes.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_backend("gpu", 2)


class TestEmptyInput:
    """Empty inputs must not spawn worker pools and must return []."""

    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_map_and_map_stream_return_empty(self, name):
        backend = make_backend(name, 2)
        try:
            assert backend.map(_square, []) == []
            assert backend.map_stream(_square, iter([])) == []
        finally:
            backend.close()

    @pytest.mark.parametrize("name", ["threads", "processes"])
    def test_no_pool_spawned(self, name):
        backend = make_backend(name, 2)
        try:
            backend.map(_square, [])
            assert backend._pool is None
            backend.map_stream(_square, iter([]))
            assert backend._pool is None
            # An empty generator must be fully drained before deciding —
            # peeking one item is what keeps the pool unspawned.
            backend.map_stream(_square, (x for x in ()))
            assert backend._pool is None
        finally:
            backend.close()

    @pytest.mark.parametrize("name", ["threads", "processes"])
    def test_no_pool_spawned_resilient(self, name):
        from repro.exec.resilience import ResilienceConfig, RetryPolicy

        backend = make_backend(
            name, 2,
            resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=2)),
        )
        try:
            assert backend.map(_square, []) == []
            assert backend.map_stream(_square, iter([])) == []
            assert backend._pool is None
        finally:
            backend.close()

    def test_identical_across_backends(self):
        outputs = []
        for name in BACKEND_CHOICES:
            backend = make_backend(name, 2)
            try:
                outputs.append(
                    (backend.map(_square, []),
                     backend.map_stream(_square, iter([])))
                )
            finally:
                backend.close()
        assert all(out == outputs[0] for out in outputs)
