"""Tests for the ASCII execution tracer."""

import pytest

from repro.exec import (
    SimScheduler,
    TaskCost,
    Timeline,
    paper_node,
    render_phase_trace,
    render_timeline_trace,
)


@pytest.fixture()
def scheduler():
    return SimScheduler(paper_node(4))


class TestSpans:
    def test_spans_recorded_per_task(self, scheduler):
        timing = scheduler.simulate_phase([TaskCost(cpu_s=1)] * 6, workers=2)
        assert len(timing.spans) == 6
        cores = {core for core, _, _ in timing.spans}
        assert cores == {0, 1}

    def test_spans_cover_busy_time(self, scheduler):
        timing = scheduler.simulate_phase(
            [TaskCost(cpu_s=0.5), TaskCost(cpu_s=1.5)], workers=2
        )
        total = sum(end - start for _, start, end in timing.spans)
        assert total == pytest.approx(timing.busy_s)

    def test_spans_do_not_overlap_per_core(self, scheduler):
        timing = scheduler.simulate_phase(
            [TaskCost(cpu_s=0.3 * (i % 4 + 1)) for i in range(20)], workers=4
        )
        by_core = {}
        for core, start, end in timing.spans:
            by_core.setdefault(core, []).append((start, end))
        for intervals in by_core.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-12

    def test_scaled_timing_scales_spans(self, scheduler):
        timing = scheduler.simulate_phase([TaskCost(cpu_s=1)], workers=1)
        doubled = timing.scaled(2.0)
        assert doubled.spans[0][2] == pytest.approx(2 * timing.spans[0][2])


class TestRendering:
    def test_phase_trace_has_row_per_core(self, scheduler):
        timing = scheduler.simulate_phase(
            [TaskCost(cpu_s=1)] * 8, workers=4, name="wc"
        )
        text = render_phase_trace(timing)
        rows = [l for l in text.splitlines() if l.strip().startswith("core")]
        assert len(rows) == 4
        assert "wc" in text
        assert "bottleneck=schedule" in text

    def test_imbalance_visible(self, scheduler):
        # One long task, three short: the long row should be much fuller.
        timing = scheduler.simulate_phase(
            [TaskCost(cpu_s=4)] + [TaskCost(cpu_s=0.5)] * 3, workers=4
        )
        text = render_phase_trace(timing, width=40)
        rows = [line for line in text.splitlines() if "core" in line]
        fills = sorted(row.count("█") for row in rows)
        assert fills[-1] > 4 * max(1, fills[0])

    def test_device_bound_annotation(self, scheduler):
        machine = paper_node(16)
        costs = [TaskCost(mem_bytes=machine.core_mem_bw) for _ in range(16)]
        timing = SimScheduler(machine).simulate_phase(costs, workers=16)
        assert timing.bottleneck == "memory"
        assert "device-bound" in render_phase_trace(timing)

    def test_empty_phase(self, scheduler):
        timing = scheduler.simulate_phase([], name="nothing")
        assert "empty" in render_phase_trace(timing)

    def test_width_validation(self, scheduler):
        timing = scheduler.simulate_phase([TaskCost(cpu_s=1)])
        with pytest.raises(ValueError):
            render_phase_trace(timing, width=2)

    def test_timeline_trace_concatenates(self, scheduler):
        timeline = Timeline()
        timeline.add(scheduler.simulate_phase([TaskCost(cpu_s=1)], name="a"))
        timeline.add(scheduler.simulate_phase([TaskCost(cpu_s=1)], name="b"))
        text = render_timeline_trace(timeline)
        assert "a:" in text and "b:" in text

    def test_timeline_trace_truncation(self, scheduler):
        timeline = Timeline()
        for i in range(5):
            timeline.add(scheduler.simulate_phase([TaskCost(cpu_s=1)], name=f"p{i}"))
        text = render_timeline_trace(timeline, max_phases=2)
        assert "3 more phase(s)" in text

    def test_empty_timeline(self):
        assert "empty" in render_timeline_trace(Timeline())
