"""Tests for parallel_map, timelines, work/span and speedup helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    SequentialBackend,
    SimScheduler,
    TaskCost,
    ThreadBackend,
    Timeline,
    auto_grain,
    parallel_map,
    paper_node,
    self_relative_speedups,
    work_span,
)


class TestParallelMap:
    def test_results_preserve_order(self):
        scheduler = SimScheduler(paper_node(4))

        def body(item, cost):
            cost.cpu_s += 0.01
            return item * 2

        result = parallel_map(scheduler, range(10), body)
        assert result.values == [i * 2 for i in range(10)]

    def test_costs_are_aggregated_into_timing(self):
        scheduler = SimScheduler(paper_node(4))

        def body(item, cost):
            cost.cpu_s += 1.0
            return None

        result = parallel_map(scheduler, range(8), body, grain=1)
        assert result.timing.totals.cpu_s == pytest.approx(8.0)
        assert result.timing.elapsed_s == pytest.approx(2.0)

    def test_grain_groups_items_into_chunks(self):
        scheduler = SimScheduler(paper_node(4))

        def body(item, cost):
            cost.cpu_s += 1.0

        fine = parallel_map(scheduler, range(8), body, grain=1)
        coarse = parallel_map(scheduler, range(8), body, grain=8)
        assert fine.timing.n_tasks == 8
        assert coarse.timing.n_tasks == 1
        # One coarse chunk serializes everything on one core.
        assert coarse.timing.elapsed_s == pytest.approx(8.0)
        assert fine.timing.elapsed_s == pytest.approx(2.0)

    def test_invalid_grain_rejected(self):
        scheduler = SimScheduler(paper_node())
        with pytest.raises(ConfigurationError):
            parallel_map(scheduler, [1], lambda i, c: i, grain=0)

    def test_workers_respected(self):
        scheduler = SimScheduler(paper_node(16))

        def body(item, cost):
            cost.cpu_s += 1.0

        result = parallel_map(scheduler, range(8), body, workers=2, grain=1)
        assert result.timing.elapsed_s == pytest.approx(4.0)

    def test_empty_items(self):
        scheduler = SimScheduler(paper_node())
        result = parallel_map(scheduler, [], lambda i, c: i)
        assert result.values == []
        assert result.timing.elapsed_s == 0.0

    def test_auto_grain_reasonable(self):
        assert auto_grain(0, 4) == 1
        assert auto_grain(10, 16) == 1
        assert auto_grain(1600, 16) == 12
        assert auto_grain(100_000, 16) == 100_000 // (16 * 8)


class TestTimeline:
    def make_timeline(self):
        scheduler = SimScheduler(paper_node(4))
        timeline = Timeline()
        timeline.add(scheduler.simulate_phase([TaskCost(cpu_s=2)], name="input"))
        timeline.add(scheduler.simulate_phase([TaskCost(cpu_s=1)], name="kmeans"))
        timeline.add(scheduler.simulate_phase([TaskCost(cpu_s=1)], name="kmeans"))
        return timeline

    def test_total_is_sum_of_phases(self):
        assert self.make_timeline().total_s == pytest.approx(4.0)

    def test_breakdown_merges_same_name(self):
        breakdown = self.make_timeline().breakdown()
        assert breakdown == {"input": pytest.approx(2.0), "kmeans": pytest.approx(2.0)}

    def test_phase_seconds(self):
        assert self.make_timeline().phase_seconds("kmeans") == pytest.approx(2.0)
        assert self.make_timeline().phase_seconds("absent") == 0.0

    def test_totals_aggregate_costs(self):
        assert self.make_timeline().totals().cpu_s == pytest.approx(4.0)

    def test_extend_concatenates(self):
        a, b = self.make_timeline(), self.make_timeline()
        a.extend(b)
        assert a.total_s == pytest.approx(8.0)

    def test_bottlenecks_reported(self):
        assert self.make_timeline().bottlenecks()["input"] == "schedule"


class TestWorkSpanAndSpeedups:
    def test_work_span(self):
        machine = paper_node()
        ws = work_span([TaskCost(cpu_s=1), TaskCost(cpu_s=3)], machine)
        assert ws.work_s == pytest.approx(4.0)
        assert ws.span_s == pytest.approx(3.0)
        assert ws.max_parallelism == pytest.approx(4 / 3)

    def test_work_span_empty(self):
        ws = work_span([], paper_node())
        assert ws.work_s == 0.0
        assert ws.max_parallelism == float("inf")

    def test_self_relative_speedups(self):
        speedups = self_relative_speedups({1: 10.0, 2: 5.0, 4: 2.5})
        assert speedups == {1: 1.0, 2: 2.0, 4: 4.0}

    def test_missing_baseline_raises(self):
        with pytest.raises(ValueError):
            self_relative_speedups({2: 5.0})


class TestRealBackends:
    def test_sequential_backend(self):
        assert SequentialBackend().map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_thread_backend_preserves_order(self):
        with ThreadBackend(4) as backend:
            assert backend.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    def test_thread_backend_single_item_inline(self):
        backend = ThreadBackend(4)
        assert backend.map(lambda x: x, [7]) == [7]
        backend.close()

    def test_thread_backend_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(0)

    def test_close_is_idempotent(self):
        backend = ThreadBackend(2)
        backend.map(lambda x: x, range(5))
        backend.close()
        backend.close()
