"""Tests for the machine model and task cost records."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import MachineSpec, TaskCost, fast_ssd_node, paper_node


class TestMachineSpec:
    def test_defaults_are_valid(self):
        machine = MachineSpec()
        assert machine.cores == 16

    def test_paper_node_factory(self):
        machine = paper_node(cores=20)
        assert machine.cores == 20
        assert "20c" in machine.name

    def test_ssd_node_is_faster_storage(self):
        hdd, ssd = paper_node(), fast_ssd_node()
        assert ssd.disk_read_bw > hdd.disk_read_bw
        assert ssd.disk_latency_s < hdd.disk_latency_s

    def test_with_cores_returns_modified_copy(self):
        machine = paper_node(cores=16)
        other = machine.with_cores(4)
        assert other.cores == 4
        assert machine.cores == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"mem_bw": 0},
            {"disk_read_bw": -1},
            {"disk_latency_s": -0.1},
            {"io_channels": 0},
            {"core_mem_bw": 1e15},  # exceeds socket bandwidth
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MachineSpec(**kwargs)

    def test_effective_workers_clamped_to_cores(self):
        machine = paper_node(cores=8)
        assert machine.effective_workers(None) == 8
        assert machine.effective_workers(4) == 4
        assert machine.effective_workers(100) == 8

    def test_effective_workers_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            paper_node().effective_workers(0)


class TestTaskCost:
    def test_zero_cost(self):
        assert TaskCost().is_zero
        assert not TaskCost(cpu_s=1).is_zero

    def test_add_accumulates_in_place(self):
        cost = TaskCost(cpu_s=1, mem_bytes=10)
        cost.add(TaskCost(cpu_s=2, disk_opens=3))
        assert cost.cpu_s == 3
        assert cost.mem_bytes == 10
        assert cost.disk_opens == 3

    def test_plus_operator_leaves_operands_untouched(self):
        a, b = TaskCost(cpu_s=1), TaskCost(cpu_s=2)
        c = a + b
        assert c.cpu_s == 3
        assert a.cpu_s == 1 and b.cpu_s == 2

    def test_total(self):
        total = TaskCost.total([TaskCost(cpu_s=1), TaskCost(cpu_s=2.5)])
        assert total.cpu_s == 3.5

    def test_scaled(self):
        cost = TaskCost(cpu_s=2, disk_opens=4).scaled(0.5)
        assert cost.cpu_s == 1
        assert cost.disk_opens == 2

    def test_compute_time_cpu_bound(self):
        machine = paper_node()
        cost = TaskCost(cpu_s=1.0, mem_bytes=1)  # negligible traffic
        assert cost.compute_time(machine) == 1.0

    def test_compute_time_memory_bound(self):
        machine = paper_node()
        # Far more traffic than one core can stream in cpu_s.
        cost = TaskCost(cpu_s=0.001, mem_bytes=machine.core_mem_bw * 2)
        assert cost.compute_time(machine) == pytest.approx(2.0)

    def test_io_time_components(self):
        machine = paper_node()
        cost = TaskCost(
            disk_read_bytes=machine.disk_read_bw,
            disk_write_bytes=machine.disk_write_bw,
            disk_opens=2,
        )
        assert cost.io_time(machine) == pytest.approx(2 + 2 * machine.disk_latency_s)

    def test_duration_is_compute_plus_io(self):
        machine = paper_node()
        cost = TaskCost(cpu_s=1.0, disk_read_bytes=machine.disk_read_bw)
        assert cost.duration_on(machine) == pytest.approx(2.0)
