"""Shared-memory data plane: handles, broadcasts, lifecycle, accounting."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec.inline import SequentialBackend, ThreadBackend
from repro.exec.process import ProcessBackend
from repro.exec.shm import (
    IpcStats,
    LocalArrays,
    LocalBroadcast,
    SEGMENT_PREFIX,
    ShmArrays,
    ShmBroadcast,
    ShmPlane,
    shm_available,
)
from repro.ops import kernels
from repro.ops.kmeans import KMeansOperator, _block_spans
from repro.sparse.matrix import CsrMatrix
from repro.sparse.vector import SparseVector

needs_shm = pytest.mark.skipif(not shm_available(), reason="no POSIX shm")


def _live_segments() -> set[str]:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except OSError:  # pragma: no cover - non-/dev/shm platform
        return set()


# Module-level so the process backend can pickle them by reference.
def _crash_worker(_item):
    os._exit(13)  # simulate a segfaulted worker


def _read_shared(descriptor):
    arrays = descriptor.resolve()
    return {key: array.tolist() for key, array in arrays.items()}


class TestIpcStats:
    def test_phases_accumulate_and_total(self):
        stats = IpcStats()
        stats.set_phase("alpha")
        stats.record_task(100)
        stats.record_task(50)
        stats.record_result(30)
        stats.set_phase("beta")
        stats.record_configure(7)
        stats.record_segment(4096)
        stats.record_broadcast(256)
        snap = stats.snapshot()
        assert snap["phases"]["alpha"]["tasks"] == 2
        assert snap["phases"]["alpha"]["task_pickle_bytes"] == 150
        assert snap["phases"]["alpha"]["result_pickle_bytes"] == 30
        assert snap["phases"]["beta"]["configures"] == 1
        assert snap["phases"]["beta"]["segments"] == 1
        assert snap["phases"]["beta"]["broadcasts"] == 1
        assert snap["total"]["task_pickle_bytes"] == 150
        assert snap["total"]["segment_bytes"] == 4096
        assert snap["total"]["broadcast_buffer_bytes"] == 256

    def test_reset_clears_everything(self):
        stats = IpcStats()
        stats.set_phase("x")
        stats.record_task(1)
        stats.reset()
        assert stats.snapshot() == {"phases": {}, "total": stats.total().as_dict()}
        assert stats.total().tasks == 0


class TestLocalHandles:
    def test_local_arrays_pass_references_through(self):
        a = np.arange(4.0)
        handle = LocalArrays("t", {"a": a})
        assert handle.descriptor() is handle
        assert handle.resolve()["a"] is a
        handle.close()
        with pytest.raises(ConfigurationError):
            handle.resolve()

    def test_local_broadcast_generations(self):
        channel = LocalBroadcast("c")
        with pytest.raises(ConfigurationError):
            channel.read(0)
        g0 = channel.publish((np.ones(3),))
        assert g0 == 0
        assert channel.read(0)[0].tolist() == [1, 1, 1]
        g1 = channel.publish((np.zeros(3),))
        assert g1 == 1
        with pytest.raises(ConfigurationError):
            channel.read(0)  # stale generation


@needs_shm
class TestShmArrays:
    def test_descriptor_roundtrip_through_pickle(self):
        arrays = {
            "idx": np.array([3, 1, 4, 1, 5], dtype=np.intp),
            "val": np.array([2.0, 7.1], dtype=np.float64),
        }
        stats = IpcStats()
        handle = ShmArrays("t", arrays, stats=stats)
        try:
            descriptor = pickle.loads(pickle.dumps(handle.descriptor()))
            resolved = descriptor.resolve()
            assert resolved["idx"].tolist() == [3, 1, 4, 1, 5]
            assert resolved["val"].tolist() == [2.0, 7.1]
            assert resolved["idx"].dtype == np.intp
            assert stats.total().segments == 1
            assert stats.total().segment_bytes >= 5 * 8 + 2 * 8
        finally:
            handle.close()

    def test_close_is_idempotent_and_unlinks(self):
        handle = ShmArrays("t", {"a": np.zeros(16)})
        name = handle.descriptor().segment
        assert name in _live_segments()
        handle.close()
        assert name not in _live_segments()
        handle.close()  # double close is safe

    def test_resolve_after_close_raises(self):
        handle = ShmArrays("t", {"a": np.zeros(2)})
        handle.close()
        with pytest.raises(ConfigurationError):
            handle.resolve()

    def test_empty_arrays_are_placeable(self):
        handle = ShmArrays("t", {"a": np.zeros(0)})
        try:
            assert handle.resolve()["a"].tolist() == []
        finally:
            handle.close()


@needs_shm
class TestShmBroadcast:
    def test_double_buffered_generations(self):
        channel = ShmBroadcast("c", (np.zeros((2, 3)), np.zeros(2)))
        try:
            descriptor = pickle.loads(pickle.dumps(channel.descriptor()))
            g0 = channel.publish((np.full((2, 3), 1.0), np.array([1.0, 2.0])))
            g1 = channel.publish((np.full((2, 3), 2.0), np.array([3.0, 4.0])))
            assert (g0, g1) == (0, 1)
            # Both live slots readable; generation 0 survives until gen 2.
            assert descriptor.read(1)[0].flat[0] == 2.0
            assert descriptor.read(0)[0].flat[0] == 1.0
            g2 = channel.publish((np.full((2, 3), 3.0), np.array([5.0, 6.0])))
            assert descriptor.read(2)[1].tolist() == [5.0, 6.0]
            with pytest.raises(ConfigurationError):
                descriptor.read(0)  # slot overwritten by generation 2
        finally:
            channel.close()

    def test_shape_mismatch_rejected(self):
        channel = ShmBroadcast("c", (np.zeros((2, 3)),))
        try:
            with pytest.raises(ConfigurationError):
                channel.publish((np.zeros((3, 2)),))
            with pytest.raises(ConfigurationError):
                channel.publish((np.zeros((2, 3)), np.zeros(2)))
        finally:
            channel.close()

    def test_close_unlinks_segment(self):
        channel = ShmBroadcast("c", (np.zeros(4),))
        name = channel.descriptor().segment
        assert name in _live_segments()
        channel.close()
        channel.close()
        assert name not in _live_segments()
        with pytest.raises(ConfigurationError):
            channel.publish((np.zeros(4),))


@needs_shm
class TestShmPlane:
    def test_close_releases_every_handle(self):
        plane = ShmPlane()
        names = [
            plane.place("a", {"x": np.zeros(8)}).descriptor().segment,
            plane.open_broadcast("b", (np.zeros(8),)).descriptor().segment,
        ]
        assert all(name in _live_segments() for name in names)
        plane.close()
        assert not any(name in _live_segments() for name in names)
        plane.close()  # idempotent


class TestBackendPlane:
    def test_in_process_backends_do_not_use_shm(self):
        assert SequentialBackend().uses_shm is False
        with ThreadBackend(2) as backend:
            assert backend.uses_shm is False
            a = np.arange(3.0)
            handle = backend.share_arrays("t", {"a": a})
            assert handle.resolve()["a"] is a  # zero copies, trivially
            channel = backend.open_broadcast("c", (a,))
            generation = backend.broadcast(channel, (a,))
            assert channel.read(generation)[0] is a
            assert backend.ipc.total().segments == 0

    @needs_shm
    def test_process_backend_share_and_map(self):
        with ProcessBackend(2, shm=True) as backend:
            assert backend.uses_shm
            handle = backend.share_arrays(
                "t", {"a": np.arange(6, dtype=np.float64)}
            )
            out = backend.map(_read_shared, [handle.descriptor()], grain=1)
            assert out == [{"a": [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]}]
            assert backend.ipc.total().segments == 1
        # close() unlinked the plane's segments
        assert handle._shm is None or True  # handle closed by plane

    def test_shm_disabled_backend_rejects_sharing(self):
        with ProcessBackend(2, shm=False) as backend:
            assert backend.uses_shm is False
            with pytest.raises(ConfigurationError):
                backend.share_arrays("t", {"a": np.zeros(2)})
            with pytest.raises(ConfigurationError):
                backend.open_broadcast("c", (np.zeros(2),))

    @needs_shm
    def test_configure_recycle_keeps_segments_alive(self):
        backend = ProcessBackend(2, shm=True)
        try:
            handle = backend.share_arrays("t", {"a": np.ones(4)})
            name = handle.descriptor().segment
            backend.configure(kernels.init_wordcount_worker, (None,))
            backend.configure(kernels.init_transform_worker, ([], [], 1))
            assert name in _live_segments()  # pool recycling must not unlink
        finally:
            backend.close()
        assert name not in _live_segments()

    @needs_shm
    def test_worker_crash_unlinks_segments(self):
        from concurrent.futures.process import BrokenProcessPool

        backend = ProcessBackend(2, shm=True)
        try:
            handle = backend.share_arrays("t", {"a": np.ones(4)})
            name = handle.descriptor().segment
            with pytest.raises(BrokenProcessPool):
                backend.map(_crash_worker, range(8), grain=1)
            # The crash path must have performed a *full* close: pool reset
            # and every segment unlinked — nothing left to leak.
            assert name not in _live_segments()
        finally:
            backend.close()


@needs_shm
class TestKMeansIpcIndependence:
    """The acceptance criterion: per-iteration task bytes vs block count."""

    @staticmethod
    def _matrix(n_docs: int, n_cols: int = 64, seed: int = 0) -> CsrMatrix:
        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(n_docs):
            nnz = int(rng.integers(3, 9))
            cols = np.sort(rng.choice(n_cols, size=nnz, replace=False))
            vals = rng.random(nnz) + 0.1
            rows.append(SparseVector(cols.tolist(), vals.tolist()))
        return CsrMatrix.from_rows(rows, n_cols=n_cols)

    def _kmeans_task_bytes_per_iter(self, matrix: CsrMatrix, shm: bool) -> float:
        operator = KMeansOperator(n_clusters=4, max_iters=2, seed=1)
        backend = ProcessBackend(2, shm=shm)
        try:
            result = operator.fit(matrix, backend=backend)
            kmeans = backend.ipc.phase_stats("kmeans")
            return kmeans.task_pickle_bytes / result.n_iters
        finally:
            backend.close()

    def test_task_bytes_independent_of_block_count(self):
        # At 32-doc grain, 1024 docs → 32 blocks and 2048 docs → 64
        # blocks; with 2 workers both exceed the 16-span cap, so each
        # iteration submits exactly 16 constant-size tokens either way.
        few_blocks = self._matrix(1024)
        many_blocks = self._matrix(2048)
        few = self._kmeans_task_bytes_per_iter(few_blocks, shm=True)
        many = self._kmeans_task_bytes_per_iter(many_blocks, shm=True)
        # Span tasks are constant-size tokens and the span count depends
        # only on the worker count, so 2x the blocks = the same bytes.
        assert many == few

    def test_shm_cuts_per_iteration_task_bytes(self):
        matrix = self._matrix(2048)
        pickled = self._kmeans_task_bytes_per_iter(matrix, shm=False)
        shm = self._kmeans_task_bytes_per_iter(matrix, shm=True)
        # 64 pickled K×V centroid copies per iteration vs a handful of
        # constant-size tokens: orders of magnitude, not percent.
        assert shm < pickled / 100

    def test_output_identical_with_and_without_shm(self):
        matrix = self._matrix(512, seed=3)
        results = {}
        for shm in (False, True):
            backend = ProcessBackend(2, shm=shm)
            try:
                results[shm] = KMeansOperator(
                    n_clusters=4, max_iters=4, seed=2
                ).fit(matrix, backend=backend)
            finally:
                backend.close()
        assert results[False].assignments == results[True].assignments
        assert (results[False].centroids == results[True].centroids).all()
        assert results[False].inertia_history == results[True].inertia_history


class TestBlockSpans:
    def test_covers_all_blocks_in_order(self):
        spans = _block_spans(64, 2)
        assert spans[0][0] == 0
        assert spans[-1][1] == 64
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
        assert len(spans) == 16  # min(64, 8*2)

    def test_fewer_blocks_than_spans(self):
        assert _block_spans(3, 2) == [(0, 1), (1, 2), (2, 3)]

    def test_span_count_independent_of_block_count(self):
        assert len(_block_spans(64, 2)) == len(_block_spans(640, 2)) == 16
