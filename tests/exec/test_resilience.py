"""Fault-tolerant execution: retries, timeouts, crash recovery, quarantine.

The crash matrix runs the real fused pipeline under deterministic
:class:`~repro.exec.faultinject.FaultPlan` injections across backends and
shm modes, and asserts the tentpole guarantee: a run that *recovers* is
bit-identical to a fault-free run, a run that *quarantines* differs by
exactly the quarantined documents, and nothing ever leaks a shared-memory
segment (the autouse fixture in ``conftest.py`` enforces the last part
for every test here).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro.core.pipeline import run_pipeline
from repro.errors import (
    ConfigurationError,
    PhaseTimeoutError,
    TaskTimeoutError,
)
from repro.exec.faultinject import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fire_spec,
)
from repro.exec.process import make_backend
from repro.exec.resilience import (
    QuarantineReport,
    ResilienceConfig,
    RetryPolicy,
    bisect_chunk,
    run_attempts,
)
from repro.exec.shm import shm_available
from repro.text.corpus import Corpus
from repro.text.synth import MIX_PROFILE, generate_corpus

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

# Small but not trivial: several chunks per phase, so faults on task ids
# 0/1 always land on real tasks and recovery leaves work to preserve.
_SCALE = 0.002


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=_SCALE, seed=7)


@pytest.fixture(scope="module")
def reference(corpus):
    """Fault-free inline run — the bit-identity anchor."""
    return run_pipeline(corpus)


def _retrying(**overrides) -> ResilienceConfig:
    base = dict(retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0))
    base.update(overrides)
    return base.pop("_cfg", None) or ResilienceConfig(**base)


def _run_faulted(
    corpus,
    backend_name,
    specs,
    state_dir,
    *,
    workers=2,
    shm=None,
    cfg=None,
    trace=False,
    degrade=False,
):
    plan = FaultPlan(specs, str(state_dir))
    backend = make_backend(
        backend_name, workers, shm=shm, resilience=cfg or _retrying()
    )
    backend.fault_plan = plan
    try:
        result = run_pipeline(corpus, backend=backend, trace=trace, degrade=degrade)
    finally:
        backend.close()
    return result, plan


def _assert_identical(result, reference):
    ra, rb = result.tfidf.matrix, reference.tfidf.matrix
    assert ra.n_rows == rb.n_rows and ra.n_cols == rb.n_cols
    for a, b in zip(ra.iter_rows(), rb.iter_rows()):
        assert a.indices == b.indices and a.values == b.values
    assert result.kmeans.assignments == reference.kmeans.assignments


def _rows(result):
    return [
        (row.indices, row.values) for row in result.tfidf.matrix.iter_rows()
    ]


class TestRetryPolicy:
    def test_default_is_fail_fast(self):
        policy = RetryPolicy.none()
        assert not policy.enabled
        assert policy.gives_up_after(1)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1, jitter=0.5)
        first = policy.backoff_s("phase#3", 2)
        assert first == policy.backoff_s("phase#3", 2)
        # Different task or attempt draws different jitter.
        assert first != policy.backoff_s("phase#4", 2)
        assert first != policy.backoff_s("phase#3", 3)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base_s=0.1, jitter=0.0, max_backoff_s=0.4
        )
        delays = [policy.backoff_s("t", n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_run_attempts_recovers_and_counts(self):
        policy = RetryPolicy(max_attempts=3)
        seen = []

        def thunk(attempt):
            seen.append(attempt)
            if attempt < 3:
                raise ValueError("transient")
            return "ok"

        retries = []
        assert (
            run_attempts(
                policy, "t", thunk, on_retry=lambda *a: retries.append(a)
            )
            == "ok"
        )
        assert seen == [1, 2, 3]
        assert len(retries) == 2

    def test_run_attempts_exhaustion_attaches_attempts(self):
        policy = RetryPolicy(max_attempts=2)

        def thunk(attempt):
            raise ValueError("always")

        with pytest.raises(ValueError) as err:
            run_attempts(policy, "t", thunk)
        assert err.value.attempts == 2

    def test_non_retryable_fails_fast(self):
        policy = RetryPolicy(max_attempts=5, retryable_exceptions=(OSError,))
        calls = []

        def thunk(attempt):
            calls.append(attempt)
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            run_attempts(policy, "t", thunk)
        assert calls == [1]


class TestBisectChunk:
    def test_isolates_single_poisoned_item(self):
        quarantined = []

        def run_chunk(sub):
            if 13 in sub:
                raise ValueError("poison")
            return [x * 2 for x in sub]

        results = bisect_chunk(
            [10, 11, 12, 13, 14, 15],
            run_chunk,
            lambda *a: quarantined.append(a),
            item_index=5,
        )
        assert results == [20, 22, 24, 28, 30]
        assert len(quarantined) == 1
        index, sub_start, n_units, exc = quarantined[0]
        assert (index, sub_start, n_units) == (8, 0, 1)
        assert isinstance(exc, ValueError)

    def test_bisect_items_splits_inside_sequences(self):
        quarantined = []

        def run_chunk(sub):
            if any("bad" in item for item in sub):
                raise ValueError("poison")
            return [[len(s) for s in item] for item in sub]

        results = bisect_chunk(
            [["aa", "bbb", "bad", "c"]],
            run_chunk,
            lambda *a: quarantined.append(a[:3]),
            item_index=2,
            bisect_items=True,
        )
        # The healthy elements survive; only the poisoned one is isolated.
        assert results == [[2, 3], [1]]
        assert quarantined == [(2, 2, 1)]

    def test_failed_exc_skips_redundant_first_run(self):
        runs = []

        def run_chunk(sub):
            runs.append(list(sub))
            return list(sub)

        marker = ValueError("already failed")
        results = bisect_chunk(
            [1, 2],
            run_chunk,
            lambda *a: pytest.fail("nothing should be quarantined"),
            item_index=0,
            failed_exc=marker,
        )
        assert results == [1, 2]
        # Straight to the two halves — the full chunk is not re-run.
        assert runs == [[1], [2]]


class TestFaultPlan:
    def test_seeded_is_deterministic(self, tmp_path):
        a = FaultPlan.seeded(41, str(tmp_path), kinds=("raise", "exit"))
        b = FaultPlan.seeded(41, str(tmp_path), kinds=("raise", "exit"))
        assert a.specs == b.specs
        c = FaultPlan.seeded(42, str(tmp_path), kinds=("raise", "exit"))
        assert a.specs != c.specs

    def test_fire_respects_times_budget(self, tmp_path):
        spec = FaultSpec("p", 0, "raise", times=2)
        plan = FaultPlan([spec], str(tmp_path))
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("p", 0)
        plan.fire("p", 0)  # budget exhausted: behaves
        assert plan.fired("p", 0) == 2
        assert plan.total_fired() == 2
        plan.reset()
        assert plan.total_fired() == 0

    def test_fire_state_survives_process_memory(self, tmp_path):
        # The marker lives on disk, so a fresh spec object (a respawned
        # worker's copy) sees the budget as spent.
        spec = FaultSpec("p", 1, "exit", times=1)
        FaultPlan([spec], str(tmp_path))
        with open(
            os.path.join(str(tmp_path), "fired_p_1"), "wb"
        ) as handle:
            handle.write(b"x")
        fire_spec(spec, str(tmp_path))  # must NOT os._exit

    def test_duplicate_task_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                [FaultSpec("p", 0, "raise"), FaultSpec("p", 0, "exit")],
                str(tmp_path),
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("p", 0, "explode")


class TestTransientFaultMatrix:
    """One injected exception per phase; retries must absorb all of them."""

    @pytest.mark.parametrize(
        "backend_name,shm",
        [
            ("sequential", None),
            ("threads", None),
            ("processes", False),
            pytest.param("processes", True, marks=needs_shm),
        ],
    )
    def test_recovery_is_bit_identical(
        self, corpus, reference, backend_name, shm, tmp_path
    ):
        specs = [
            FaultSpec("input+wc", 1, "raise"),
            FaultSpec("transform", 0, "raise"),
            FaultSpec("kmeans", 0, "raise"),
        ]
        result, plan = _run_faulted(
            corpus, backend_name, specs, tmp_path, shm=shm, trace=True
        )
        assert plan.total_fired() == 3
        _assert_identical(result, reference)
        # Every absorbed fault is billed as a retry...
        assert result.ipc["total"]["retries"] == 3
        # ...and the re-executions are visible in the span trace.
        retried = {
            (span.phase, span.task_id)
            for span in result.trace.spans
            if span.attempt > 1
        }
        assert retried == {("input+wc", 1), ("transform", 0), ("kmeans", 0)}

    def test_without_retry_budget_the_fault_propagates(self, corpus, tmp_path):
        specs = [FaultSpec("transform", 0, "raise")]
        with pytest.raises(FaultInjected):
            _run_faulted(
                corpus,
                "sequential",
                specs,
                tmp_path,
                cfg=ResilienceConfig(retry=RetryPolicy.none()),
            )


class TestWorkerCrashRecovery:
    """A worker hard-exits mid-phase; the pool respawns and replays."""

    @pytest.mark.parametrize(
        "shm", [False, pytest.param(True, marks=needs_shm)]
    )
    def test_crash_replay_is_bit_identical(
        self, corpus, reference, shm, tmp_path
    ):
        specs = [FaultSpec("input+wc", 1, "exit")]
        result, plan = _run_faulted(
            corpus, "processes", specs, tmp_path, shm=shm, trace=True
        )
        assert plan.total_fired() == 1
        _assert_identical(result, reference)
        total = result.ipc["total"]
        assert total["pool_restarts"] == 1
        # Replayed in-flight chunks were re-pickled on the recovery bill.
        assert total["retries"] >= 1
        assert total["retry_pickle_bytes"] > 0

    def test_circuit_breaker_trips_on_repeated_crashes(self, corpus, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        # More crashes than the breaker tolerates.
        specs = [FaultSpec("input+wc", 1, "exit", times=5)]
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=3), max_pool_restarts=1
        )
        with pytest.raises(BrokenProcessPool) as err:
            _run_faulted(corpus, "processes", specs, tmp_path, cfg=cfg)
        assert "input+wc" in str(err.value)


class TestTimeouts:
    def test_hung_process_worker_is_killed_and_retried(
        self, corpus, reference, tmp_path
    ):
        specs = [FaultSpec("transform", 0, "hang", hang_s=30.0)]
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2), task_timeout_s=1.0
        )
        result, plan = _run_faulted(
            corpus, "processes", specs, tmp_path, cfg=cfg
        )
        assert plan.total_fired() == 1
        _assert_identical(result, reference)
        total = result.ipc["total"]
        assert total["timeouts"] == 1
        assert total["pool_restarts"] >= 1

    def test_hung_thread_cannot_be_reclaimed(self, tmp_path):
        specs = [FaultSpec("test", 1, "hang", hang_s=1.5)]
        cfg = ResilienceConfig(task_timeout_s=0.2)
        backend = make_backend("threads", 2, resilience=cfg)
        backend.fault_plan = FaultPlan(specs, str(tmp_path))
        try:
            backend.begin_phase("test")
            with pytest.raises(TaskTimeoutError) as err:
                backend.map(lambda x: x, list(range(4)), grain=1)
            assert "abandoned" in str(err.value)
        finally:
            backend.close()

    def test_phase_deadline_aborts_the_phase(self, corpus, tmp_path):
        specs = [FaultSpec("transform", 0, "hang", hang_s=30.0)]
        cfg = ResilienceConfig(phase_timeout_s=0.5)
        with pytest.raises(PhaseTimeoutError):
            _run_faulted(corpus, "processes", specs, tmp_path, cfg=cfg)


class TestQuarantine:
    """``on_poison="quarantine"`` isolates the poison, keeps the rest."""

    def test_transform_quarantine_differs_only_by_dropped_rows(
        self, corpus, reference, tmp_path
    ):
        # This task fails on every attempt — a genuinely poisoned chunk.
        specs = [FaultSpec("transform", 0, "raise", times=1_000_000)]
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2), on_poison="quarantine"
        )
        result, _ = _run_faulted(
            corpus, "processes", specs, tmp_path, cfg=cfg
        )
        assert isinstance(result.quarantine, QuarantineReport)
        dropped = set(result.quarantine.doc_ids)
        assert dropped and len(dropped) < len(corpus)
        assert result.ipc["total"]["quarantined"] == len(dropped)
        # The transform happens after df/idf are fixed, so surviving rows
        # must be byte-identical to the reference minus the dropped ones.
        ref_rows = [
            row
            for index, row in enumerate(_rows(reference))
            if index not in dropped
        ]
        assert _rows(result) == ref_rows
        assert len(result.kmeans.assignments) == len(ref_rows)

    @pytest.mark.parametrize("backend_name", ["sequential", "threads", "processes"])
    def test_wordcount_quarantine_equals_pipeline_without_the_docs(
        self, corpus, backend_name, tmp_path
    ):
        specs = [FaultSpec("input+wc", 1, "raise", times=1_000_000)]
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2), on_poison="quarantine"
        )
        result, _ = _run_faulted(
            corpus, backend_name, specs, tmp_path, cfg=cfg
        )
        dropped = set(result.quarantine.doc_ids)
        assert dropped and len(dropped) < len(corpus)
        # Dropping documents in phase 1 changes df/idf too, so the correct
        # equivalence is a fault-free run over the corpus *minus* them.
        filtered = Corpus.from_texts(
            "filtered",
            [
                doc.text
                for index, doc in enumerate(corpus)
                if index not in dropped
            ],
        )
        _assert_identical(result, run_pipeline(filtered))

    def test_fail_fast_stays_the_default(self, corpus, tmp_path):
        specs = [FaultSpec("transform", 0, "raise", times=1_000_000)]
        with pytest.raises(FaultInjected):
            _run_faulted(corpus, "processes", specs, tmp_path)


class TestGracefulDegradation:
    def test_pipeline_downgrades_and_completes(
        self, corpus, reference, tmp_path
    ):
        # The breaker tolerates no restarts, so the first crash survives
        # the backend and run_pipeline(degrade=True) must absorb it.
        specs = [FaultSpec("transform", 0, "exit")]
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=3), max_pool_restarts=0
        )
        result, _ = _run_faulted(
            corpus, "processes", specs, tmp_path, cfg=cfg, degrade=True
        )
        _assert_identical(result, reference)
        assert [
            (event.phase, event.from_backend, event.to_backend)
            for event in result.downgrades
        ] == [("transform", "processes-2", "threads-2")]

    def test_without_degrade_the_crash_propagates(self, corpus, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        specs = [FaultSpec("transform", 0, "exit")]
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=3), max_pool_restarts=0
        )
        with pytest.raises(BrokenProcessPool):
            _run_faulted(corpus, "processes", specs, tmp_path, cfg=cfg)


_SIGTERM_SCRIPT = """
import sys, time
import numpy as np
from repro.exec.shm import ShmPlane

plane = ShmPlane()
handle = plane.place("probe", {"a": np.arange(1024, dtype=np.int64)})
print(handle.descriptor().segment, flush=True)
time.sleep(30)
"""


@needs_shm
class TestSigtermCleanup:
    def test_sigterm_mid_run_unlinks_segments(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ])
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGTERM_SCRIPT],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            segment = proc.stdout.readline().strip()
            assert segment
            assert os.path.exists(f"/dev/shm/{segment}")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The handler unlinked the segment, then re-delivered the signal
        # so the process still reports death-by-SIGTERM.
        assert not os.path.exists(f"/dev/shm/{segment}")
        assert proc.returncode == -signal.SIGTERM
