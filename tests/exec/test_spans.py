"""Tests for per-task span tracing (repro.exec.spans)."""

from __future__ import annotations

import json
import pickle
import time

import pytest

from repro.core.pipeline import run_pipeline
from repro.errors import ConfigurationError
from repro.exec.process import ProcessBackend, make_backend
from repro.exec.spans import (
    RunTrace,
    SpanRecorder,
    TaskSpan,
    install_worker_epoch,
    worker_now,
)
from repro.exec.trace import render_phase_trace
from repro.text.synth import MIX_PROFILE, generate_corpus


def span(phase, task_id, worker, t0, t1, **kw):
    return TaskSpan(phase=phase, task_id=task_id, worker=worker,
                    t_start=t0, t_end=t1, **kw)


class TestSpanRecorder:
    def test_disarmed_record_is_a_noop(self):
        recorder = SpanRecorder()
        recorder.record(0.0, 1.0)
        assert recorder.spans == []
        assert recorder.enabled is False

    def test_begin_run_arms_and_clears(self):
        recorder = SpanRecorder()
        epoch = recorder.begin_run()
        assert recorder.enabled and epoch == recorder.epoch
        recorder.record(0.0, 1.0, n_items=3)
        assert len(recorder.spans) == 1
        recorder.begin_run()  # re-arming drops the previous run's spans
        assert recorder.spans == []

    def test_begin_run_anchors_epoch_to_wall_clock(self):
        recorder = SpanRecorder()
        before = time.time()
        recorder.begin_run()
        after = time.time()
        assert before <= recorder.epoch_wall <= after

    def test_end_run_disarms_but_keeps_spans(self):
        recorder = SpanRecorder()
        recorder.begin_run()
        recorder.record(0.0, 1.0)
        recorder.end_run()
        recorder.record(1.0, 2.0)  # post-run records are dropped
        assert len(recorder.spans) == 1

    def test_phase_and_task_id_defaults(self):
        recorder = SpanRecorder()
        recorder.begin_run()
        recorder.set_phase("alpha")
        recorder.record(0.0, 0.1)
        recorder.record(0.1, 0.2)
        recorder.set_phase("beta")
        recorder.record(0.2, 0.3)
        spans = recorder.spans
        assert [(s.phase, s.task_id) for s in spans] == [
            ("alpha", 0), ("alpha", 1), ("beta", 0),
        ]

    def test_next_task_id_is_per_phase(self):
        recorder = SpanRecorder()
        recorder.begin_run()
        assert recorder.next_task_id("a") == 0
        assert recorder.next_task_id("a") == 1
        assert recorder.next_task_id("b") == 0

    def test_lanes_are_dense_in_first_appearance_order(self):
        recorder = SpanRecorder()
        recorder.begin_run()
        recorder.record(0, 1, worker_key=("proc", 4242))
        recorder.record(1, 2, worker_key=("thread", 7))
        recorder.record(2, 3, worker_key=("proc", 4242))
        assert [s.worker for s in recorder.spans] == [0, 1, 0]
        assert recorder.n_lanes == 2

    def test_record_worker_span_round_trip(self):
        recorder = SpanRecorder()
        recorder.begin_run()
        raw = ("kmeans", 5, 999, 1.0, 1.5, 4, 100, 200, 0.25)
        recorder.record_worker_span(raw)
        (s,) = recorder.spans
        assert (s.phase, s.task_id) == ("kmeans", 5)
        assert (s.t_start, s.t_end) == (1.0, 1.5)
        assert (s.n_items, s.in_bytes, s.out_bytes, s.queue_s) == (4, 100, 200, 0.25)

    def test_negative_queue_wait_is_clamped(self):
        recorder = SpanRecorder()
        recorder.begin_run()
        recorder.record(0.0, 1.0, queue_s=-0.5)
        assert recorder.spans[0].queue_s == 0.0


class TestWorkerEpoch:
    def test_install_rebases_worker_clock(self):
        try:
            install_worker_epoch(0.0)
            raw = worker_now()
            install_worker_epoch(raw)  # "now" becomes the epoch
            assert worker_now() < raw
        finally:
            install_worker_epoch(0.0)


class TestPhaseStats:
    def test_full_utilization_single_worker(self):
        trace = RunTrace(spans=[span("p", 0, 0, 0.0, 1.0), span("p", 1, 0, 1.0, 2.0)])
        stats = trace.phase_summary()["p"]
        assert stats.n_tasks == 2
        assert stats.n_workers == 1
        assert stats.window_s == pytest.approx(2.0)
        assert stats.busy_s == pytest.approx(2.0)
        assert stats.utilization == pytest.approx(1.0)
        assert stats.straggler_ratio == pytest.approx(1.0)
        assert stats.serial_tail_s == 0.0

    def test_idle_worker_halves_utilization(self):
        # Worker 1 finishes at t=1 while worker 0 runs until t=2.
        trace = RunTrace(spans=[
            span("p", 0, 0, 0.0, 2.0),
            span("p", 1, 1, 0.0, 1.0),
        ])
        stats = trace.phase_summary()["p"]
        assert stats.n_workers == 2
        assert stats.utilization == pytest.approx(3.0 / 4.0)
        assert stats.straggler_ratio == pytest.approx(2.0)  # p100=2, p50=1
        assert stats.serial_tail_s == pytest.approx(1.0)

    def test_queue_wait_totals(self):
        trace = RunTrace(spans=[
            span("p", 0, 0, 0.0, 1.0, queue_s=0.2),
            span("p", 1, 1, 0.0, 1.0, queue_s=0.3),
        ])
        assert trace.phase_summary()["p"].queue_wait_s == pytest.approx(0.5)

    def test_busy_never_exceeds_lanes_times_window(self):
        # Spans per worker are disjoint, so busy <= n_workers * window.
        trace = RunTrace(spans=[
            span("p", i, i % 3, 0.1 * i, 0.1 * i + 0.05) for i in range(12)
        ])
        stats = trace.phase_summary()["p"]
        assert stats.busy_s <= stats.n_workers * stats.window_s + 1e-9

    def test_top_stragglers_sorted_slowest_first(self):
        trace = RunTrace(spans=[
            span("a", 0, 0, 0.0, 0.5),
            span("b", 0, 0, 1.0, 3.0),
            span("a", 1, 1, 0.0, 0.1),
        ])
        top = trace.top_stragglers(2)
        assert [(s.phase, s.task_id) for s in top] == [("b", 0), ("a", 0)]


class TestChromeExport:
    def _trace(self):
        return RunTrace(
            spans=[
                span("input+wc", 0, 0, 0.0, 0.5, n_items=3, out_bytes=10),
                span("input+wc", 1, 1, 0.1, 0.4),
                span("kmeans", 0, 0, 0.6, 0.9, queue_s=0.05),
            ],
            phase_wall_s={"input+wc": 0.5, "kmeans": 0.3},
            backend_name="processes-2",
            workers=2,
        )

    def test_structure_is_valid_trace_event_json(self):
        doc = self._trace().to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        # The wall anchor rides along so traces line up against the
        # run ledger's wall-clock timestamps.
        assert doc["otherData"] == {"epoch_wall_s": 0.0}
        events = doc["traceEvents"]
        assert all(e["ph"] in ("M", "X") for e in events)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        for event in xs:
            assert {"pid", "tid", "name", "cat", "ts", "dur", "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Microsecond conversion: 0.5s span -> 500000us.
        assert xs[0]["ts"] == 0.0 and xs[0]["dur"] == pytest.approx(5e5)
        # Metadata names the process and each worker lane.
        names = [e["name"] for e in events if e["ph"] == "M"]
        assert names.count("thread_name") == 2

    def test_spans_disjoint_per_worker_lane(self):
        doc = self._trace().to_chrome_trace()
        by_lane: dict[int, list[tuple[float, float]]] = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                by_lane.setdefault(event["tid"], []).append(
                    (event["ts"], event["ts"] + event["dur"])
                )
        for intervals in by_lane.values():
            intervals.sort()
            for (_, e0), (s1, _) in zip(intervals, intervals[1:]):
                assert s1 >= e0

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._trace().write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == self._trace().to_chrome_trace()


class TestPhaseTimingAdapter:
    def test_adapts_and_renders(self):
        trace = RunTrace(spans=[
            span("input+wc", 0, 0, 1.0, 1.5),
            span("input+wc", 1, 1, 1.1, 1.4),
            span("kmeans", 0, 0, 2.0, 2.2),
        ])
        timings = trace.to_phase_timings()
        assert [t.name for t in timings] == ["input+wc", "kmeans"]
        first = timings[0]
        # Re-based to the phase's first task start.
        assert first.spans[0][1] == pytest.approx(0.0)
        assert first.elapsed_s == pytest.approx(0.5)
        assert first.workers == 2
        chart = render_phase_trace(first)
        assert "input+wc" in chart and "core" in chart


class TestProcessBackendTracing:
    def test_traced_trampoline_results_blob_matches_untraced(self):
        """The results pickle must be byte-identical traced or not."""
        from repro.exec.process import run_pickled_chunk, run_pickled_chunk_traced

        fn = len
        chunk = ["abc", "de", ""]
        plain = run_pickled_chunk(pickle.dumps((fn, chunk)))
        traced, span_blob = run_pickled_chunk_traced(
            pickle.dumps((fn, chunk, 3, "input+wc", 0.0))
        )
        assert traced == plain
        raw = pickle.loads(span_blob)
        assert raw[0] == "input+wc" and raw[1] == 3
        assert raw[5] == len(chunk)

    def test_pool_records_worker_spans_with_rebased_clock(self):
        backend = ProcessBackend(2, shm=False)
        try:
            backend.spans.begin_run()
            backend.begin_phase("input+wc")
            out = backend.map(len, ["x" * i for i in range(50)], grain=5)
            assert out == [i for i in range(50)]
            spans = backend.spans.spans
            assert len(spans) == 10  # one per chunk
            now = backend.spans.now()
            for s in spans:
                assert s.phase == "input+wc"
                assert 0.0 <= s.t_start <= s.t_end <= now
                assert s.n_items == 5
                assert s.in_bytes > 0 and s.out_bytes > 0
        finally:
            backend.close()

    def test_span_bytes_billed_separately(self):
        backend = ProcessBackend(1, shm=False)
        try:
            backend.spans.begin_run()
            backend.begin_phase("input+wc")
            untraced_backend = ProcessBackend(1, shm=False)
            try:
                untraced_backend.begin_phase("input+wc")
                backend.map(len, list("abcdef"), grain=2)
                untraced_backend.map(len, list("abcdef"), grain=2)
                traced_ipc = backend.ipc.snapshot()["phases"]["input+wc"]
                plain_ipc = untraced_backend.ipc.snapshot()["phases"]["input+wc"]
                # Same result bytes; span payload on its own counter.
                assert (
                    traced_ipc["result_pickle_bytes"]
                    == plain_ipc["result_pickle_bytes"]
                )
                assert traced_ipc["span_pickle_bytes"] > 0
                assert plain_ipc["span_pickle_bytes"] == 0
            finally:
                untraced_backend.close()
        finally:
            backend.close()

    def test_broken_pool_error_names_phase_and_task(self):
        backend = ProcessBackend(1, shm=False)
        try:
            backend.begin_phase("kmeans")
            backend._last_task = "kmeans#7"
            error = backend._broken(ValueError("worker ate a signal"))
            message = str(error)
            assert "kmeans" in message
            assert "kmeans#7" in message
            assert "worker ate a signal" in message
        finally:
            backend.close()

    def test_broken_pool_error_without_context(self):
        backend = ProcessBackend(1, shm=False)
        try:
            error = backend._broken()
            assert "worker pool crashed" in str(error)
        finally:
            backend.close()


class TestBackendAliases:
    @pytest.mark.parametrize("alias,name", [
        ("process", "processes"),
        ("thread", "threads"),
        ("inline", "sequential"),
    ])
    def test_singular_aliases_resolve(self, alias, name):
        backend = make_backend(alias, 2)
        try:
            assert backend.name.startswith(name)
        finally:
            backend.close()

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("gpu")


class TestTracedPipeline:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(MIX_PROFILE, scale=0.002, seed=3)

    def _assert_identical(self, a, b):
        ma, mb = a.tfidf.matrix, b.tfidf.matrix
        assert (ma.n_rows, ma.n_cols) == (mb.n_rows, mb.n_cols)
        for ra, rb in zip(ma.iter_rows(), mb.iter_rows()):
            assert ra.indices == rb.indices
            assert ra.values == rb.values
        assert a.kmeans.assignments == b.kmeans.assignments

    def test_trace_requires_a_backend(self, corpus):
        with pytest.raises(ConfigurationError, match="backend"):
            run_pipeline(corpus, trace=True)

    def test_untraced_run_has_no_trace(self, corpus):
        backend = make_backend("sequential")
        try:
            result = run_pipeline(corpus, backend=backend)
        finally:
            backend.close()
        assert result.trace is None
        assert backend.spans.enabled is False

    @pytest.mark.parametrize("name,workers", [
        ("sequential", 1), ("threads", 2), ("processes", 2),
    ])
    def test_every_phase_has_spans_on_every_backend(self, corpus, name, workers):
        backend = make_backend(name, workers)
        try:
            result = run_pipeline(corpus, backend=backend, trace=True)
        finally:
            backend.close()
        trace = result.trace
        assert trace is not None
        assert set(trace.phases) == {"input+wc", "transform", "kmeans"}
        for phase in trace.phases:
            assert len(trace.phase_spans(phase)) >= 1
        summary = trace.phase_summary()
        for stats in summary.values():
            assert 0.0 < stats.utilization <= 1.0 + 1e-9
            assert stats.straggler_ratio >= 1.0
            assert stats.busy_s <= stats.n_workers * stats.window_s + 1e-9
        # Span time within a phase never exceeds that phase's wall time
        # by more than scheduling jitter allows per worker.
        for phase, stats in summary.items():
            wall = result.phase_seconds[phase]
            assert stats.busy_s <= stats.n_workers * wall + 0.25

    @pytest.mark.parametrize("name,workers", [
        ("sequential", 1), ("threads", 2), ("processes", 2),
    ])
    def test_output_bit_identical_tracing_on_or_off(self, corpus, name, workers):
        def run(trace):
            backend = make_backend(name, workers)
            try:
                return run_pipeline(corpus, backend=backend, trace=trace)
            finally:
                backend.close()

        self._assert_identical(run(False), run(True))

    def test_trace_carried_on_result_with_metrics(self, corpus):
        backend = make_backend("processes", 2)
        try:
            result = run_pipeline(corpus, backend=backend, trace=True)
        finally:
            backend.close()
        summary = result.trace.summary_dict()
        for stats in summary.values():
            assert {"utilization", "straggler_ratio", "queue_wait_s",
                    "serial_tail_s", "n_tasks", "n_workers"} <= set(stats)
        assert result.trace.backend_name == "processes-2"
        assert result.trace.workers == 2
