"""Tests for the virtual-time scheduler and its roofline bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulerError
from repro.exec import MachineSpec, SimScheduler, TaskCost, paper_node

_GB = 1024**3


def cpu_tasks(n, seconds=1.0):
    return [TaskCost(cpu_s=seconds) for _ in range(n)]


class TestCpuScheduling:
    def test_single_task_single_core(self):
        timing = SimScheduler(paper_node(1)).simulate_phase(cpu_tasks(1), name="t")
        assert timing.elapsed_s == pytest.approx(1.0)
        assert timing.workers == 1
        assert timing.bottleneck == "schedule"

    def test_perfect_scaling_for_balanced_tasks(self):
        scheduler = SimScheduler(paper_node(4))
        timing = scheduler.simulate_phase(cpu_tasks(8))
        assert timing.elapsed_s == pytest.approx(2.0)

    def test_imbalanced_tail_extends_makespan(self):
        scheduler = SimScheduler(paper_node(2))
        costs = [TaskCost(cpu_s=1), TaskCost(cpu_s=1), TaskCost(cpu_s=5)]
        timing = scheduler.simulate_phase(costs)
        # Greedy: cores take 1s tasks, then one takes the 5s task -> 6s.
        assert timing.elapsed_s == pytest.approx(6.0)

    def test_workers_argument_limits_parallelism(self):
        scheduler = SimScheduler(paper_node(16))
        timing = scheduler.simulate_phase(cpu_tasks(8), workers=2)
        assert timing.elapsed_s == pytest.approx(4.0)
        assert timing.workers == 2

    def test_empty_phase_is_instant(self):
        timing = SimScheduler(paper_node()).simulate_phase([])
        assert timing.elapsed_s == 0.0
        assert timing.n_tasks == 0

    def test_negative_cost_rejected(self):
        with pytest.raises(SchedulerError):
            SimScheduler(paper_node()).simulate_phase([TaskCost(cpu_s=-1)])

    def test_utilization_perfect_when_balanced(self):
        timing = SimScheduler(paper_node(4)).simulate_phase(cpu_tasks(4))
        assert timing.utilization == pytest.approx(1.0)

    def test_utilization_half_when_one_core_idle(self):
        timing = SimScheduler(paper_node(2)).simulate_phase(cpu_tasks(1))
        assert timing.utilization == pytest.approx(0.5)

    def test_serial_phase_helper(self):
        timing = SimScheduler(paper_node(16)).serial_phase(TaskCost(cpu_s=3), "out")
        assert timing.elapsed_s == pytest.approx(3.0)
        assert timing.workers == 1
        assert timing.name == "out"


class TestRooflines:
    def test_memory_bandwidth_caps_parallel_phase(self):
        machine = MachineSpec(cores=16, mem_bw=10 * _GB, core_mem_bw=4 * _GB)
        scheduler = SimScheduler(machine)
        # 16 tasks, each 1s CPU and 4 GB of traffic: per-core compute is
        # max(1, 1)=1s, but total traffic 64 GB needs 6.4s at socket bw.
        costs = [TaskCost(cpu_s=1.0, mem_bytes=4 * _GB) for _ in range(16)]
        timing = scheduler.simulate_phase(costs)
        assert timing.bottleneck == "memory"
        assert timing.elapsed_s == pytest.approx(6.4)

    def test_memory_roofline_irrelevant_on_one_core(self):
        machine = MachineSpec(cores=1, mem_bw=10 * _GB, core_mem_bw=4 * _GB)
        costs = [TaskCost(cpu_s=1.0, mem_bytes=4 * _GB) for _ in range(16)]
        timing = SimScheduler(machine).simulate_phase(costs)
        # One core streams 4 GB/s; 64 GB takes 16s on the core itself, far
        # above the 6.4s socket roofline.
        assert timing.bottleneck == "schedule"
        assert timing.elapsed_s == pytest.approx(16.0)

    def test_disk_read_bandwidth_bound(self):
        machine = MachineSpec(cores=8, disk_read_bw=100 * 1024 * 1024)
        costs = [TaskCost(disk_read_bytes=100 * 1024 * 1024) for _ in range(8)]
        timing = SimScheduler(machine).simulate_phase(costs)
        assert timing.bounds["disk-read"] == pytest.approx(8.0)
        assert timing.elapsed_s >= 8.0

    def test_disk_latency_overlapped_by_channels(self):
        machine = MachineSpec(cores=8, io_channels=4, disk_latency_s=0.01)
        costs = [TaskCost(disk_opens=1) for _ in range(100)]
        timing = SimScheduler(machine).simulate_phase(costs, workers=8)
        assert timing.bounds["disk-latency"] == pytest.approx(100 * 0.01 / 4)

    def test_disk_latency_not_overlapped_on_one_worker(self):
        machine = MachineSpec(cores=8, io_channels=4, disk_latency_s=0.01)
        costs = [TaskCost(disk_opens=1) for _ in range(100)]
        timing = SimScheduler(machine).simulate_phase(costs, workers=1)
        # A single worker opens files one at a time.
        assert timing.elapsed_s == pytest.approx(1.0)

    def test_elapsed_is_max_of_bounds(self):
        scheduler = SimScheduler(paper_node(4))
        costs = [
            TaskCost(cpu_s=0.5, mem_bytes=1 * _GB, disk_read_bytes=10 * 1024 * 1024)
            for _ in range(12)
        ]
        timing = scheduler.simulate_phase(costs)
        assert timing.elapsed_s == pytest.approx(max(timing.bounds.values()))

    def test_io_hidden_behind_compute_with_many_threads(self):
        """Optimization 2: parallel input hides I/O latency behind compute."""
        machine = paper_node(16)
        per_file = TaskCost(
            cpu_s=0.1,
            disk_read_bytes=machine.disk_read_bw * 0.01,
            disk_opens=1,
        )
        costs = [per_file for _ in range(160)]
        one = SimScheduler(machine).simulate_phase(costs, workers=1)
        many = SimScheduler(machine).simulate_phase(costs, workers=16)
        assert one.elapsed_s / many.elapsed_s > 8  # near-linear despite I/O


class TestPhaseTiming:
    def test_scaled_multiplies_times(self):
        timing = SimScheduler(paper_node(2)).simulate_phase(cpu_tasks(2))
        double = timing.scaled(2.0)
        assert double.elapsed_s == pytest.approx(2 * timing.elapsed_s)
        assert double.busy_s == pytest.approx(2 * timing.busy_s)
        assert double.bounds["schedule"] == pytest.approx(
            2 * timing.bounds["schedule"]
        )

    @given(
        st.lists(st.floats(0.001, 10.0), min_size=1, max_size=40),
        st.integers(1, 32),
    )
    def test_makespan_bounds_hold(self, durations, cores):
        """Greedy schedule obeys the classic bounds: max(avg, longest) <= makespan <= avg + longest."""
        machine = MachineSpec(cores=cores)
        costs = [TaskCost(cpu_s=d) for d in durations]
        timing = SimScheduler(machine).simulate_phase(costs)
        total = sum(durations)
        longest = max(durations)
        lower = max(total / machine.effective_workers(None), longest)
        assert timing.elapsed_s >= lower - 1e-9
        assert timing.elapsed_s <= total / machine.effective_workers(None) + longest + 1e-9

    @given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=30))
    def test_more_cores_never_slower(self, durations):
        costs = [TaskCost(cpu_s=d) for d in durations]
        times = [
            SimScheduler(MachineSpec(cores=c)).simulate_phase(costs).elapsed_s
            for c in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
