"""Cross-module integration and failure-injection tests.

These exercise the full paper pipeline across real module boundaries:
filesystem storage, the workflow engine, both execution modes, the
planner, and error propagation when the substrate misbehaves.
"""

import pytest

from repro import (
    MIX_PROFILE,
    FsStorage,
    MemStorage,
    SimScheduler,
    WorkflowPlanner,
    build_tfidf_kmeans_workflow,
    generate_corpus,
    paper_node,
    read_sparse_arff,
    store_corpus,
)
from repro.core.cost_model import WorkloadScale
from repro.errors import StorageError
from repro.exec import TaskCost
from repro.io.storage import Storage


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=21)


class TestFilesystemPipeline:
    def test_full_discrete_run_on_real_files(self, corpus, tmp_path):
        storage = FsStorage(str(tmp_path / "data"))
        store_corpus(storage, corpus, prefix="in/")
        workflow = build_tfidf_kmeans_workflow(mode="discrete", max_iters=5)
        result = workflow.run(
            SimScheduler(paper_node(8)),
            storage,
            inputs={"tfidf.corpus_prefix": "in/"},
            workers=8,
            scratch_prefix="scratch/",
        )
        # The intermediate ARFF is a real file readable by the codec.
        arff_path = tmp_path / "data" / "scratch" / "tfidf.scores.arff"
        assert arff_path.exists()
        relation = read_sparse_arff(arff_path.read_text())
        assert relation.rows.n_rows == len(corpus)
        # And the final output is real too.
        clusters_file = tmp_path / "data" / "clusters.txt"
        assert len(clusters_file.read_text().strip().splitlines()) == len(corpus)
        assert result.total_s > 0

    def test_mem_and_fs_storage_agree(self, corpus, tmp_path):
        results = {}
        for label, storage in (
            ("mem", MemStorage()),
            ("fs", FsStorage(str(tmp_path / "fs"))),
        ):
            store_corpus(storage, corpus, prefix="in/")
            workflow = build_tfidf_kmeans_workflow(mode="merged", max_iters=5)
            results[label] = workflow.run(
                SimScheduler(paper_node(8)),
                storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=8,
            )
        assert (
            results["mem"].value("kmeans.clusters").assignments
            == results["fs"].value("kmeans.clusters").assignments
        )
        assert results["mem"].total_s == pytest.approx(
            results["fs"].total_s, rel=1e-9
        )


class TestDeterminism:
    def test_repeated_runs_identical(self, corpus):
        outcomes = []
        for _ in range(2):
            storage = MemStorage()
            store_corpus(storage, corpus, prefix="in/")
            workflow = build_tfidf_kmeans_workflow(mode="discrete", max_iters=5)
            result = workflow.run(
                SimScheduler(paper_node(16)),
                storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=12,
            )
            outcomes.append(
                (
                    result.total_s,
                    tuple(sorted(result.breakdown().items())),
                    tuple(result.value("kmeans.clusters").assignments),
                    result.peak_resident_bytes,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_scale_changes_time_not_results(self, corpus):
        assignments = {}
        times = {}
        for factor in (1.0, 25.0):
            storage = MemStorage()
            store_corpus(storage, corpus, prefix="in/")
            workflow = build_tfidf_kmeans_workflow(
                mode="merged",
                max_iters=5,
                scale=WorkloadScale(doc_factor=factor, vocab_factor=factor / 5 if factor > 1 else 1.0),
            )
            result = workflow.run(
                SimScheduler(paper_node(8)),
                storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=8,
            )
            assignments[factor] = result.value("kmeans.clusters").assignments
            times[factor] = result.total_s
        assert assignments[1.0] == assignments[25.0]
        assert times[25.0] > 10 * times[1.0]


class _FlakyStorage(Storage):
    """Delegates to MemStorage, failing the Nth read."""

    def __init__(self, inner: MemStorage, fail_on_read: int) -> None:
        self.inner = inner
        self.fail_on_read = fail_on_read
        self.reads = 0

    def read(self, path):
        self.reads += 1
        if self.reads == self.fail_on_read:
            raise StorageError(f"injected failure reading {path!r}")
        return self.inner.read(path)

    def write(self, path, data):
        return self.inner.write(path, data)

    def exists(self, path):
        return self.inner.exists(path)

    def size(self, path):
        return self.inner.size(path)

    def delete(self, path):
        self.inner.delete(path)

    def list(self, prefix=""):
        return self.inner.list(prefix)


class TestFailureInjection:
    def make_flaky(self, corpus, fail_on_read):
        inner = MemStorage()
        store_corpus(inner, corpus, prefix="in/")
        return _FlakyStorage(inner, fail_on_read)

    def test_read_failure_propagates_as_storage_error(self, corpus):
        storage = self.make_flaky(corpus, fail_on_read=10)
        workflow = build_tfidf_kmeans_workflow(mode="merged", max_iters=3)
        with pytest.raises(StorageError, match="injected failure"):
            workflow.run(
                SimScheduler(paper_node(4)),
                storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=4,
            )

    def test_failure_during_materialization_read(self, corpus):
        # Let the corpus reads succeed, fail on the ARFF read-back
        # (reads: 47 docs + 1 intermediate).
        storage = self.make_flaky(corpus, fail_on_read=len(corpus) + 1)
        workflow = build_tfidf_kmeans_workflow(mode="discrete", max_iters=3)
        with pytest.raises(StorageError):
            workflow.run(
                SimScheduler(paper_node(4)),
                storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=4,
            )

    def test_no_failure_when_injection_beyond_reads(self, corpus):
        storage = self.make_flaky(corpus, fail_on_read=10_000)
        workflow = build_tfidf_kmeans_workflow(mode="merged", max_iters=3)
        result = workflow.run(
            SimScheduler(paper_node(4)),
            storage,
            inputs={"tfidf.corpus_prefix": "in/"},
            workers=4,
        )
        assert result.total_s > 0


class TestPlannerAgainstReality:
    def test_planner_ranking_matches_direct_measurement(self, corpus):
        """The plan's predicted ordering of extreme configs must agree
        with actually running them on the full stored corpus."""
        storage = MemStorage()
        store_corpus(storage, corpus, prefix="in/")
        planner = WorkflowPlanner(
            paper_node(16),
            dict_kinds=("map",),
            modes=("merged", "discrete"),
            worker_options=(1, 16),
            mixed_dicts=False,
        )
        plan = planner.plan(storage, "in/", pilot_docs=24, max_iters=3)

        def measure(mode, workers):
            workflow = build_tfidf_kmeans_workflow(mode=mode, max_iters=3)
            return workflow.run(
                SimScheduler(paper_node(16)),
                storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=workers,
            ).total_s

        predicted = {
            (e.config.mode, e.config.workers): e.predicted_s
            for e in plan.candidates
        }
        measured = {
            key: measure(*key)
            for key in [("merged", 16), ("discrete", 1)]
        }
        # Best and worst extremes ordered the same way in both worlds.
        assert predicted[("merged", 16)] < predicted[("discrete", 1)]
        assert measured[("merged", 16)] < measured[("discrete", 1)]


class TestSerialTransformVariant:
    def test_serial_transform_flag(self, corpus):
        """§3.2: the standalone operator's phase 2 can be left serial."""
        from repro.ops import TfIdfOperator

        storage = MemStorage()
        store_corpus(storage, corpus, prefix="in/")
        scheduler = SimScheduler(paper_node(16))
        parallel = TfIdfOperator(parallel_transform=True).run_simulated(
            scheduler, storage, "in/", workers=16
        )
        serial = TfIdfOperator(parallel_transform=False).run_simulated(
            scheduler, storage, "in/", workers=16
        )
        assert list(serial.matrix.iter_rows()) == list(parallel.matrix.iter_rows())
        assert serial.timeline.phase_seconds(
            "transform"
        ) > parallel.timeline.phase_seconds("transform")

    def test_workflow_describe(self):
        workflow = build_tfidf_kmeans_workflow(mode="discrete")
        text = workflow.describe()
        assert "tfidf" in text and "kmeans" in text
        assert "=[file]=>" in text
