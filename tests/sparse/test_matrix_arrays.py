"""CsrMatrix array-conversion edge cases, and the tiled round trip.

``from_arrays``/``as_arrays`` are the seams between the operators'
list-backed matrices, the shm plane's segment views, and the tile
plane's on-disk spill — the degenerate shapes (no rows, empty rows,
odd dtypes) must survive every crossing unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OperatorError, TileError
from repro.sparse.matrix import CsrMatrix
from repro.sparse.vector import SparseVector
from repro.tiles import TileStore
from repro.tiles.matrix import TiledCsrMatrix


class TestEmptyShapes:
    def test_empty_matrix_round_trips(self):
        empty = CsrMatrix([0], [], [], n_cols=5)
        indptr, indices, data = empty.as_arrays()
        assert (empty.n_rows, empty.nnz) == (0, 0)
        assert list(indptr) == [0] and len(indices) == 0 and len(data) == 0
        back = CsrMatrix.from_arrays(indptr, indices, data, n_cols=5)
        assert (back.n_rows, back.n_cols, back.nnz) == (0, 5, 0)
        assert list(back.iter_rows()) == []

    def test_empty_rows_survive_conversion(self):
        # Documents with no surviving terms (stopword-only, min_df-pruned)
        # become empty rows; row identity must survive the array crossing.
        matrix = CsrMatrix([0, 0, 2, 2, 3], [1, 4, 0], [0.5, 1.5, 2.0], 5)
        back = CsrMatrix.from_arrays(*matrix.as_arrays(), n_cols=5)
        assert back.n_rows == 4
        assert back.row_nnz(0) == 0 and back.row_nnz(2) == 0
        assert list(back.row(0).indices) == []
        assert list(back.row(1).indices) == [1, 4]
        assert list(back.row(3).values) == [2.0]

    def test_zero_indptr_is_rejected(self):
        with pytest.raises(OperatorError, match="indptr"):
            CsrMatrix([], [], [], n_cols=1)


class TestDtypes:
    def test_as_arrays_fixes_dtypes_from_lists(self):
        matrix = CsrMatrix([0, 2], [0, 3], [1.0, 2.0], 4)
        indptr, indices, data = matrix.as_arrays()
        assert indptr.dtype == np.int64
        assert indices.dtype == np.intp
        assert data.dtype == np.float64

    def test_non_default_index_dtypes_accepted(self):
        # Arrays arriving as int32/float32 (foreign producers, compact
        # storage) still convert; values are preserved exactly because
        # the sample values are representable in both widths.
        matrix = CsrMatrix.from_arrays(
            np.array([0, 1, 3], dtype=np.int32),
            np.array([2, 0, 1], dtype=np.uint16),
            np.array([1.0, 0.5, 0.25], dtype=np.float32),
            n_cols=3,
        )
        indptr, indices, data = matrix.as_arrays()
        assert indptr.dtype == np.int64 and list(indptr) == [0, 1, 3]
        assert indices.dtype == np.intp and list(indices) == [2, 0, 1]
        assert data.dtype == np.float64 and list(data) == [1.0, 0.5, 0.25]

    def test_array_backed_rows_match_list_backed(self):
        rows = [
            SparseVector.from_pairs([(0, 1.0), (2, 0.5)]),
            SparseVector.from_pairs([]),
            SparseVector.from_pairs([(1, 2.0)]),
        ]
        listed = CsrMatrix.from_rows(rows, n_cols=3)
        arrayed = CsrMatrix.from_arrays(*listed.as_arrays(), n_cols=3)
        for a, b in zip(listed.iter_rows(), arrayed.iter_rows()):
            assert list(a.indices) == list(b.indices)
            assert list(a.values) == list(b.values)


class TestTiledRoundTrip:
    def _spill(self, matrix: CsrMatrix, store: TileStore, rows_per_tile=2):
        indptr, indices, data = matrix.as_arrays()
        for start in range(0, matrix.n_rows, rows_per_tile):
            stop = min(matrix.n_rows, start + rows_per_tile)
            lo, hi = int(indptr[start]), int(indptr[stop])
            local = indptr[start:stop + 1] - lo
            norms = np.array([
                float(data[indptr[i]:indptr[i + 1]] @ data[indptr[i]:indptr[i + 1]])
                for i in range(start, stop)
            ])
            store.append(start, matrix.n_cols, local,
                         indices[lo:hi], data[lo:hi], norms)
        return store.seal(matrix.n_cols)

    def test_tiled_matrix_round_trips_including_empty_rows(self):
        matrix = CsrMatrix(
            [0, 2, 2, 3, 6, 6], [1, 3, 0, 0, 2, 4],
            [0.5, 1.0, 2.0, 0.25, 0.75, 1.5], 5,
        )
        store = TileStore()
        try:
            tiled = TiledCsrMatrix(self._spill(matrix, store), store=store)
            assert (tiled.n_rows, tiled.n_cols, tiled.nnz) == (5, 5, 6)
            for a, b in zip(matrix.iter_rows(), tiled.iter_rows()):
                assert list(a.indices) == list(b.indices)
                assert a.values == list(b.values)
            indptr, indices, data = tiled.as_arrays()
            ref_indptr, ref_indices, ref_data = matrix.as_arrays()
            assert indptr.tobytes() == ref_indptr.tobytes()
            assert list(indices) == list(ref_indices)
            assert data.tobytes() == ref_data.tobytes()
        finally:
            store.close()

    def test_corrupted_tile_checksum_raises_on_verified_read(self):
        matrix = CsrMatrix([0, 1, 2], [0, 1], [1.0, 2.0], 2)
        store = TileStore()
        try:
            manifest = self._spill(matrix, store, rows_per_tile=1)
            path = manifest.path(manifest.tiles[1])
            with open(path, "r+b") as handle:
                handle.seek(-1, 2)
                byte = handle.read(1)
                handle.seek(-1, 2)
                handle.write(bytes([byte[0] ^ 0x01]))
            verified = TiledCsrMatrix(
                manifest, reader=store.reader(manifest, verify=True)
            )
            assert list(verified.row(0).values) == [1.0]  # tile 0 intact
            with pytest.raises(TileError, match="checksum"):
                verified.row(1)
        finally:
            store.close()
