"""Tests for the CSR matrix and free-function kernels."""

import pytest

from repro.errors import OperatorError
from repro.sparse import (
    CsrMatrix,
    SparseVector,
    cosine_similarity,
    dense_squared_norm,
    mean_of_rows,
    nearest_centroid,
    scale_dense,
    zero_dense,
)


def sample_rows():
    return [
        SparseVector([0, 2], [1.0, 2.0]),
        SparseVector(),
        SparseVector([1], [3.0]),
    ]


class TestCsrMatrix:
    def test_from_rows_roundtrip(self):
        rows = sample_rows()
        matrix = CsrMatrix.from_rows(rows)
        assert matrix.n_rows == 3
        assert matrix.n_cols == 3
        assert matrix.nnz == 3
        for i, row in enumerate(rows):
            assert matrix.row(i) == row

    def test_explicit_n_cols(self):
        matrix = CsrMatrix.from_rows(sample_rows(), n_cols=10)
        assert matrix.n_cols == 10

    def test_n_cols_too_small_rejected(self):
        with pytest.raises(OperatorError):
            CsrMatrix.from_rows(sample_rows(), n_cols=2)

    def test_row_out_of_range(self):
        matrix = CsrMatrix.from_rows(sample_rows())
        with pytest.raises(OperatorError):
            matrix.row(3)
        with pytest.raises(OperatorError):
            matrix.row(-1)

    def test_row_nnz(self):
        matrix = CsrMatrix.from_rows(sample_rows())
        assert [matrix.row_nnz(i) for i in range(3)] == [2, 0, 1]

    def test_iter_rows(self):
        matrix = CsrMatrix.from_rows(sample_rows())
        assert list(matrix.iter_rows()) == sample_rows()

    def test_invalid_indptr_rejected(self):
        with pytest.raises(OperatorError):
            CsrMatrix([1, 2], [0], [1.0], n_cols=1)
        with pytest.raises(OperatorError):
            CsrMatrix([0, 2], [0], [1.0], n_cols=1)
        with pytest.raises(OperatorError):
            CsrMatrix([0, 2, 1], [0, 1], [1.0, 1.0], n_cols=2)

    def test_resident_bytes_positive(self):
        assert CsrMatrix.from_rows(sample_rows()).resident_bytes() > 0

    def test_empty_matrix(self):
        matrix = CsrMatrix.from_rows([])
        assert matrix.n_rows == 0
        assert matrix.n_cols == 0


class TestKernels:
    def test_dense_squared_norm(self):
        assert dense_squared_norm([3.0, 4.0]) == pytest.approx(25.0)

    def test_scale_and_zero_dense(self):
        buffer = [1.0, 2.0]
        scale_dense(buffer, 2.0)
        assert buffer == [2.0, 4.0]
        zero_dense(buffer)
        assert buffer == [0.0, 0.0]

    def test_cosine_similarity_parallel_vectors(self):
        a = SparseVector([0, 1], [1.0, 1.0])
        b = SparseVector([0, 1], [2.0, 2.0])
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_cosine_similarity_orthogonal(self):
        a = SparseVector([0], [1.0])
        b = SparseVector([1], [1.0])
        assert cosine_similarity(a, b) == 0.0

    def test_cosine_similarity_zero_vector(self):
        assert cosine_similarity(SparseVector(), SparseVector([0], [1.0])) == 0.0

    def test_nearest_centroid_picks_closest(self):
        centroids = [[1.0, 0.0], [0.0, 1.0]]
        norms = [1.0, 1.0]
        vec = SparseVector([1], [0.9])
        index, distance = nearest_centroid(vec, centroids, norms)
        assert index == 1
        assert distance == pytest.approx(0.9**2 - 2 * 0.9 + 1.0)

    def test_nearest_centroid_tie_breaks_low_index(self):
        centroids = [[1.0, 0.0], [1.0, 0.0]]
        vec = SparseVector([0], [1.0])
        index, _ = nearest_centroid(vec, centroids, [1.0, 1.0])
        assert index == 0

    def test_mean_of_rows(self):
        rows = [SparseVector([0], [2.0]), SparseVector([1], [4.0])]
        assert mean_of_rows(rows, 2) == [1.0, 2.0]

    def test_mean_of_no_rows(self):
        assert mean_of_rows([], 3) == [0.0, 0.0, 0.0]
