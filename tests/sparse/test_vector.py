"""Unit and property tests for sparse vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OperatorError
from repro.sparse import SparseVector

sparse_dicts = st.dictionaries(st.integers(0, 40), st.floats(-10, 10), max_size=15)


class TestConstruction:
    def test_empty_vector(self):
        vec = SparseVector()
        assert vec.nnz == 0
        assert vec.norm() == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(OperatorError):
            SparseVector([1, 2], [1.0])

    def test_unsorted_indices_rejected(self):
        with pytest.raises(OperatorError):
            SparseVector([2, 1], [1.0, 2.0])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(OperatorError):
            SparseVector([1, 1], [1.0, 2.0])

    def test_from_pairs_sums_duplicates(self):
        vec = SparseVector.from_pairs([(3, 1.0), (1, 2.0), (3, 4.0)])
        assert vec.indices == [1, 3]
        assert vec.values == [2.0, 5.0]

    def test_from_dict(self):
        vec = SparseVector.from_dict({5: 1.0, 2: 3.0})
        assert vec.indices == [2, 5]

    def test_from_dense_drops_zeros(self):
        vec = SparseVector.from_dense([0.0, 1.5, 0.0, -2.0])
        assert vec.indices == [1, 3]
        assert vec.values == [1.5, -2.0]


class TestAccess:
    def test_get_present_and_absent(self):
        vec = SparseVector([1, 5], [2.0, 3.0])
        assert vec.get(1) == 2.0
        assert vec.get(5) == 3.0
        assert vec.get(3) == 0.0
        assert vec.get(100) == 0.0

    def test_items_and_len(self):
        vec = SparseVector([0, 2], [1.0, 2.0])
        assert list(vec.items()) == [(0, 1.0), (2, 2.0)]
        assert len(vec) == 2

    def test_equality(self):
        assert SparseVector([1], [2.0]) == SparseVector([1], [2.0])
        assert SparseVector([1], [2.0]) != SparseVector([1], [3.0])

    def test_to_dense(self):
        vec = SparseVector([1, 3], [2.0, 4.0])
        assert vec.to_dense(5) == [0.0, 2.0, 0.0, 4.0, 0.0]

    def test_to_dense_out_of_range(self):
        with pytest.raises(OperatorError):
            SparseVector([10], [1.0]).to_dense(5)


class TestMath:
    def test_dot_disjoint_is_zero(self):
        a = SparseVector([0, 2], [1.0, 1.0])
        b = SparseVector([1, 3], [1.0, 1.0])
        assert a.dot(b) == 0.0

    def test_dot_overlapping(self):
        a = SparseVector([0, 2, 4], [1.0, 2.0, 3.0])
        b = SparseVector([2, 4], [5.0, 7.0])
        assert a.dot(b) == pytest.approx(2 * 5 + 3 * 7)

    def test_dot_dense(self):
        a = SparseVector([0, 3], [2.0, 4.0])
        assert a.dot_dense([1.0, 0.0, 0.0, 5.0]) == pytest.approx(22.0)

    def test_dot_dense_ignores_out_of_range(self):
        a = SparseVector([0, 10], [2.0, 4.0])
        assert a.dot_dense([3.0]) == pytest.approx(6.0)

    def test_norms(self):
        vec = SparseVector([1, 2], [3.0, 4.0])
        assert vec.squared_norm() == pytest.approx(25.0)
        assert vec.norm() == pytest.approx(5.0)

    def test_scale(self):
        vec = SparseVector([1], [2.0]).scale(2.5)
        assert vec.values == [5.0]

    def test_normalized_unit_norm(self):
        vec = SparseVector([0, 1], [3.0, 4.0]).normalized()
        assert vec.norm() == pytest.approx(1.0)

    def test_normalized_zero_vector(self):
        vec = SparseVector().normalized()
        assert vec.nnz == 0

    def test_add(self):
        a = SparseVector([0, 2], [1.0, 2.0])
        b = SparseVector([1, 2], [5.0, 3.0])
        assert a.add(b) == SparseVector([0, 1, 2], [1.0, 5.0, 5.0])

    def test_add_into_dense_with_weight(self):
        buffer = [0.0] * 4
        SparseVector([1, 3], [1.0, 2.0]).add_into_dense(buffer, weight=2.0)
        assert buffer == [0.0, 2.0, 0.0, 4.0]

    def test_squared_distance_to_dense(self):
        vec = SparseVector([0], [1.0])
        dense = [0.0, 1.0]
        dist = vec.squared_distance_to_dense(dense, dense_sq_norm=1.0)
        assert dist == pytest.approx(2.0)  # ||(1,0)-(0,1)||^2


class TestProperties:
    @given(sparse_dicts, sparse_dicts)
    def test_dot_commutative(self, da, db):
        a, b = SparseVector.from_dict(da), SparseVector.from_dict(db)
        assert a.dot(b) == pytest.approx(b.dot(a))

    @given(sparse_dicts, sparse_dicts)
    def test_dot_matches_dense_computation(self, da, db):
        a, b = SparseVector.from_dict(da), SparseVector.from_dict(db)
        size = 41
        dense = sum(x * y for x, y in zip(a.to_dense(size), b.to_dense(size)))
        assert a.dot(b) == pytest.approx(dense)

    @given(sparse_dicts, sparse_dicts)
    def test_add_matches_dense_addition(self, da, db):
        a, b = SparseVector.from_dict(da), SparseVector.from_dict(db)
        size = 41
        expected = [x + y for x, y in zip(a.to_dense(size), b.to_dense(size))]
        result = a.add(b).to_dense(size)
        for got, want in zip(result, expected):
            assert got == pytest.approx(want)

    @given(sparse_dicts)
    def test_distance_to_dense_matches_direct(self, da):
        vec = SparseVector.from_dict(da)
        size = 41
        dense = [0.5] * size
        sq = sum(v * v for v in dense)
        direct = sum(
            (x - y) ** 2 for x, y in zip(vec.to_dense(size), dense)
        )
        assert vec.squared_distance_to_dense(dense, sq) == pytest.approx(
            direct, abs=1e-9
        )

    @given(sparse_dicts)
    def test_normalized_is_unit_or_zero(self, da):
        vec = SparseVector.from_dict(
            {k: v for k, v in da.items() if abs(v) > 1e-6}
        )
        norm = vec.normalized().norm()
        assert norm == pytest.approx(1.0) or vec.nnz == 0
