"""Planner under a memory budget: tile only when the budget demands it.

The rule is asymmetric on purpose. A budget smaller than the predicted
matrix footprint leaves no choice — every plan must tile (and fusion,
whose worker-resident intermediates cannot spill, is off the table). A
budget the matrix fits under makes tiling an *option* the cost model
prices via the ``tile_io`` term — and since spill I/O is pure overhead
when memory suffices, the argmin must come back untiled.
"""

from __future__ import annotations

import pytest

from repro.plan import AdaptivePlanner, PhasePlan, PhaseWorkload, RealCostModel

from tests.plan.test_planner import make_store

N_DOCS = 1000


def _matrix_bytes(store, n_docs=N_DOCS):
    return int(n_docs * store.phases["transform"].result_bytes_per_doc)


class TestPlanDecision:
    def test_no_budget_never_tiles(self):
        plan = AdaptivePlanner(make_store(), cpu_count=4).plan(N_DOCS)
        assert plan.tiled is False
        assert plan.memory_budget is None
        assert all(not p.tiled for p in plan.phases.values())

    def test_budget_below_matrix_forces_tiling(self):
        store = make_store()
        budget = _matrix_bytes(store) // 4
        plan = AdaptivePlanner(store, cpu_count=4).plan(
            N_DOCS, memory_budget=budget
        )
        assert plan.tiled is True
        assert plan.memory_budget == budget
        assert plan.matrix_bytes == _matrix_bytes(store)
        assert plan.phases["transform"].tiled
        assert plan.phases["kmeans"].tiled
        # Fusion's worker-resident intermediates cannot spill; a forced
        # tiled plan must never fuse.
        assert not plan.fused

    def test_ample_budget_stays_untiled(self):
        store = make_store()
        plan = AdaptivePlanner(store, cpu_count=4).plan(
            N_DOCS, memory_budget=_matrix_bytes(store) * 100
        )
        assert plan.tiled is False
        assert plan.memory_budget is not None
        assert not plan.phases["transform"].tiled

    def test_forced_tiled_plan_never_pairs_kmeans_with_shm(self):
        store = make_store()
        plan = AdaptivePlanner(store, cpu_count=4).plan(
            N_DOCS, memory_budget=_matrix_bytes(store) // 8
        )
        km = plan.phases["kmeans"]
        assert km.tiled
        assert not km.shm  # workers map tiles; a segment would re-materialize

    def test_summary_carries_tiling_fields(self):
        store = make_store()
        budget = _matrix_bytes(store) // 2
        summary = AdaptivePlanner(store, cpu_count=4).plan(
            N_DOCS, memory_budget=budget
        ).summary_dict()
        assert summary["tiled"] is True
        assert summary["memory_budget"] == budget
        assert summary["matrix_bytes"] == _matrix_bytes(store)


class TestTileIoCost:
    def test_tiled_plan_pays_tile_io(self):
        store = make_store()
        model = RealCostModel(store, cpu_count=4)
        workload = PhaseWorkload(
            "transform", N_DOCS, matrix_bytes=_matrix_bytes(store)
        )
        plain = model.predict(workload, PhasePlan("transform", "sequential"))
        tiled = model.predict(
            workload, PhasePlan("transform", "sequential", tiled=True)
        )
        assert "tile_io" not in plain.breakdown
        assert tiled.breakdown["tile_io"] == pytest.approx(
            _matrix_bytes(store) * store.tile_io_ns_per_byte * 1e-9
        )
        assert tiled.predicted_s > plain.predicted_s

    def test_kmeans_pays_per_iteration(self):
        store = make_store()
        model = RealCostModel(store, cpu_count=4)
        mb = _matrix_bytes(store)
        one = model.predict(
            PhaseWorkload("kmeans", N_DOCS, iterations=1, matrix_bytes=mb),
            PhasePlan("kmeans", "sequential", tiled=True),
        )
        five = model.predict(
            PhaseWorkload("kmeans", N_DOCS, iterations=5, matrix_bytes=mb),
            PhasePlan("kmeans", "sequential", tiled=True),
        )
        assert five.breakdown["tile_io"] == pytest.approx(
            5 * one.breakdown["tile_io"]
        )

    def test_describe_marks_tiled_phases(self):
        assert "+tiled" in PhasePlan("kmeans", "sequential", tiled=True).describe()
        assert "+tiled" not in PhasePlan("kmeans", "sequential").describe()
