"""Adaptive planner: argmin choices, fusion costing, explain narrative."""

from __future__ import annotations

import pytest

from repro.dicts.factory import PLANNER_KINDS, dict_candidate_pairs
from repro.errors import PlannerError
from repro.plan import (
    AdaptivePlanner,
    CalibrationStore,
    PhaseConstants,
    PhasePlan,
    PhaseWorkload,
    RealCostModel,
)

PHASES = ("input+wc", "transform", "kmeans")


def make_store(
    compute_ns: float = 100_000.0,
    task_bytes: float = 3_000.0,
    result_bytes: float = 5_000.0,
    pickle_ns: float = 0.5,
    spawn_s: float = 0.12,
) -> CalibrationStore:
    """A store with hand-picked constants (no probing, fully deterministic)."""
    return CalibrationStore(
        phases={
            phase: PhaseConstants(
                compute_ns_per_doc=compute_ns,
                task_bytes_per_doc=task_bytes,
                result_bytes_per_doc=result_bytes,
                # Mirrors the probe: shm thins kmeans task payloads
                # (block tokens) but not wc/transform ones.
                shm_task_bytes_per_doc=(
                    0.0 if phase == "kmeans" else task_bytes
                ),
                merge_ops_per_doc=100.0 if phase == "input+wc" else 0.0,
            )
            for phase in PHASES
        },
        pickle_ns_per_byte=pickle_ns,
        unpickle_ns_per_byte=pickle_ns,
        pool_spawn_s_per_worker=spawn_s,
        dict_ns_per_op={"map": 100.0, "unordered_map": 40.0},
        source="fixture",
    )


class TestCostModel:
    def test_sequential_has_no_ipc_terms(self):
        model = RealCostModel(make_store(), cpu_count=4)
        estimate = model.predict(
            PhaseWorkload("transform", 1000), PhasePlan("transform", "sequential")
        )
        assert set(estimate.breakdown) == {"compute", "dict"}

    def test_threads_pay_overhead_without_parallelism(self):
        model = RealCostModel(make_store(), cpu_count=4)
        seq = model.predict(
            PhaseWorkload("transform", 1000), PhasePlan("transform", "sequential")
        )
        threads = model.predict(
            PhaseWorkload("transform", 1000), PhasePlan("transform", "threads", 4)
        )
        assert threads.breakdown["compute"] == seq.breakdown["compute"]
        assert threads.predicted_s > seq.predicted_s

    def test_processes_divide_compute_by_cpus(self):
        model = RealCostModel(make_store(), cpu_count=4)
        seq = model.predict(
            PhaseWorkload("transform", 1000), PhasePlan("transform", "sequential")
        )
        procs = model.predict(
            PhaseWorkload("transform", 1000), PhasePlan("transform", "processes", 4)
        )
        assert procs.breakdown["compute"] == pytest.approx(
            seq.breakdown["compute"] / 4
        )
        assert procs.breakdown["pickle"] > 0
        assert procs.breakdown["spawn"] == pytest.approx(4 * 0.12)

    def test_workers_clamped_to_cpu_count(self):
        model = RealCostModel(make_store(), cpu_count=1)
        procs = model.predict(
            PhaseWorkload("transform", 1000), PhasePlan("transform", "processes", 8)
        )
        seq = model.predict(
            PhaseWorkload("transform", 1000), PhasePlan("transform", "sequential")
        )
        # 1 CPU: no compute division, only overhead on top.
        assert procs.breakdown["compute"] == seq.breakdown["compute"]

    def test_fused_transform_zeroes_corpus_sized_pickles(self):
        model = RealCostModel(make_store(), cpu_count=4)
        unfused = model.predict(
            PhaseWorkload("transform", 10_000),
            PhasePlan("transform", "processes", 2, True),
        )
        fused = model.predict(
            PhaseWorkload("transform", 10_000),
            PhasePlan(
                "transform", "processes", 2, True, fused_with_previous=True
            ),
        )
        assert fused.breakdown["pickle"] < unfused.breakdown["pickle"]
        assert fused.breakdown["spawn"] == 0.0
        assert fused.predicted_s < unfused.predicted_s

    def test_unknown_phase_raises(self):
        from repro.errors import ConfigurationError

        model = RealCostModel(make_store(), cpu_count=1)
        with pytest.raises(ConfigurationError):
            model.predict(PhaseWorkload("nope", 10), PhasePlan("nope", "sequential"))


class TestAdaptivePlanner:
    def test_single_cpu_discovers_sequential(self):
        planner = AdaptivePlanner(make_store(), cpu_count=1, shm_ok=True)
        plan = planner.plan(n_docs=1000)
        for phase in PHASES:
            assert plan.phases[phase].backend == "sequential", phase
        assert not plan.fused

    def test_many_cpus_cheap_ipc_discovers_processes(self):
        # Compute-heavy docs, near-free pickling and spawning: the model
        # must flip to the process backend without being told.
        store = make_store(
            compute_ns=5_000_000.0, task_bytes=10.0, result_bytes=10.0,
            pickle_ns=0.01, spawn_s=0.001,
        )
        planner = AdaptivePlanner(store, cpu_count=8, shm_ok=True)
        plan = planner.plan(n_docs=5000)
        assert plan.phases["input+wc"].backend == "processes"
        assert plan.phases["kmeans"].backend == "processes"

    def test_fusion_chosen_when_pickles_dominate(self):
        # Heavy compute pushes the pair onto processes; fat transform
        # task pickles then make the fused variant the argmin.
        store = make_store(
            compute_ns=5_000_000.0, task_bytes=50_000.0, result_bytes=10.0,
            pickle_ns=1.0, spawn_s=0.001,
        )
        planner = AdaptivePlanner(store, cpu_count=8, shm_ok=True)
        plan = planner.plan(n_docs=5000)
        assert plan.phases["transform"].backend == "processes"
        assert plan.fused
        # Fusion binds the transform to the word count's configuration.
        assert (
            plan.phases["transform"].backend,
            plan.phases["transform"].workers,
            plan.phases["transform"].shm,
        ) == (
            plan.phases["input+wc"].backend,
            plan.phases["input+wc"].workers,
            plan.phases["input+wc"].shm,
        )

    def test_no_shm_excludes_fused_process_candidates(self):
        planner = AdaptivePlanner(make_store(), cpu_count=4, shm_ok=False)
        plan = planner.plan(n_docs=1000)
        for pair in plan.pair_candidates:
            if pair.fused and pair.transform.plan.backend == "processes":
                pytest.fail("fused process candidate enumerated without shm")

    def test_empty_corpus_raises(self):
        with pytest.raises(PlannerError):
            AdaptivePlanner(make_store(), cpu_count=1).plan(n_docs=0)

    def test_dict_candidates_come_from_factory(self):
        planner = AdaptivePlanner(make_store(), cpu_count=1, shm_ok=False)
        plan = planner.plan(n_docs=100)
        enumerated = {
            (pair.wc.plan.dict_kind, pair.transform.plan.dict_kind)
            for pair in plan.pair_candidates
        }
        assert enumerated == set(dict_candidate_pairs(PLANNER_KINDS))

    def test_explain_names_rejected_candidates(self):
        planner = AdaptivePlanner(make_store(), cpu_count=1, shm_ok=True)
        plan = planner.plan(n_docs=1000)
        narrative = plan.explain()
        assert "rejected:" in narrative
        assert "kmeans:" in narrative
        assert "sequential" in narrative
        # The chosen line and the predicted totals are narrated too.
        assert f"Plan for {1000} documents" in narrative

    def test_ties_resolve_to_simplest_config(self):
        # With all costs zero every candidate ties; the stable sort must
        # leave the simplest (sequential) configuration in front.
        store = CalibrationStore(
            phases={phase: PhaseConstants() for phase in PHASES},
            pickle_ns_per_byte=0.0, unpickle_ns_per_byte=0.0,
            pool_spawn_s_per_worker=0.0, shm_setup_s=0.0, task_overhead_s=0.0,
            dict_ns_per_op={"map": 0.0, "unordered_map": 0.0},
        )
        plan = AdaptivePlanner(store, cpu_count=4, shm_ok=True).plan(n_docs=10)
        for phase in PHASES:
            assert plan.phases[phase].backend == "sequential"

    def test_summary_dict_is_json_able(self):
        import json

        plan = AdaptivePlanner(make_store(), cpu_count=1).plan(n_docs=100)
        payload = json.loads(json.dumps(plan.summary_dict()))
        assert payload["fused"] == plan.fused
        assert set(payload["phases"]) == set(PHASES)


class TestCachedPhases:
    """Result-cache integration: cached phases are pinned, not enumerated."""

    def test_cached_phase_priced_at_serve_speed(self):
        model = RealCostModel(make_store(), cpu_count=1)
        workload = PhaseWorkload("kmeans", 1000, iterations=50)
        cached = model.predict(
            workload, PhasePlan("kmeans", "sequential", cached=True)
        )
        computed = model.predict(workload, PhasePlan("kmeans", "sequential"))
        assert set(cached.breakdown) == {"cache_serve"}
        assert cached.predicted_s < computed.predicted_s
        # Serving ignores the iteration count: the clustering comes whole.
        more_iters = model.predict(
            PhaseWorkload("kmeans", 1000, iterations=500),
            PhasePlan("kmeans", "sequential", cached=True),
        )
        assert more_iters.predicted_s == cached.predicted_s

    def test_cached_plan_describes_itself(self):
        assert PhasePlan("kmeans", "sequential", cached=True).describe() == "cached"

    def test_all_phases_cached_pins_every_plan(self):
        planner = AdaptivePlanner(make_store(), cpu_count=8, shm_ok=True)
        plan = planner.plan(
            n_docs=5000,
            cached_phases=frozenset({"input+wc", "transform", "kmeans"}),
        )
        for phase in PHASES:
            assert plan.phases[phase].cached, phase
        assert len(plan.pair_candidates) == 1
        assert len(plan.kmeans_candidates) == 1
        assert not plan.fused

    def test_partial_cache_still_enumerates_the_live_phase(self):
        planner = AdaptivePlanner(make_store(), cpu_count=4, shm_ok=True)
        plan = planner.plan(
            n_docs=1000, cached_phases=frozenset({"input+wc"})
        )
        assert plan.phases["input+wc"].cached
        assert not plan.phases["transform"].cached
        # The transform is still chosen from real candidates, unfused
        # (a served word count has no live pool to fuse into).
        assert len(plan.pair_candidates) > 1
        assert all(not pair.fused for pair in plan.pair_candidates)

    def test_allow_fusion_false_drops_fused_candidates(self):
        store = make_store(
            compute_ns=5_000_000.0, task_bytes=50_000.0, result_bytes=10.0,
            pickle_ns=1.0, spawn_s=0.001,
        )
        planner = AdaptivePlanner(store, cpu_count=8, shm_ok=True)
        assert planner.plan(n_docs=5000).fused  # sanity: fusion would win
        plan = planner.plan(n_docs=5000, allow_fusion=False)
        assert not plan.fused
        assert all(not pair.fused for pair in plan.pair_candidates)

    def test_cached_phases_beat_any_computed_candidate(self):
        planner = AdaptivePlanner(make_store(), cpu_count=1, shm_ok=False)
        cached = planner.plan(
            n_docs=1000,
            cached_phases=frozenset({"input+wc", "transform", "kmeans"}),
        )
        live = planner.plan(n_docs=1000)
        assert cached.predicted_total_s < live.predicted_total_s
