"""Calibration store: probe, persistence round-trip, observed-run fits."""

from __future__ import annotations

import pytest

from repro.core.pipeline import run_pipeline
from repro.exec.process import make_backend
from repro.exec.spans import SpanRecorder, RunTrace
from repro.plan import CalibrationStore, PhaseConstants, PhasePlan, PhaseWorkload, RealCostModel
from repro.text.synth import MIX_PROFILE, generate_corpus

PHASES = ("input+wc", "transform", "kmeans")


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=7)


@pytest.fixture(scope="module")
def probed(corpus):
    return CalibrationStore.probe(corpus)


class TestProbe:
    def test_fits_every_phase(self, probed):
        for phase in PHASES:
            constants = probed.phases[phase]
            assert constants.compute_ns_per_doc > 0
            assert constants.task_bytes_per_doc > 0
            assert constants.result_bytes_per_doc > 0
        assert probed.pickle_ns_per_byte > 0
        assert probed.unpickle_ns_per_byte > 0
        assert probed.samples >= 16
        assert probed.source == "probe"
        assert "probe" in probed.describe()

    def test_dict_factors_cover_planner_kinds(self, probed):
        from repro.dicts.factory import PLANNER_KINDS

        for kind in PLANNER_KINDS:
            assert probed.dict_factor_ns(kind) > 0
        # Unknown kinds fall back to the median of the known factors.
        known = sorted(probed.dict_ns_per_op.values())
        assert probed.dict_factor_ns("nope") == known[len(known) // 2]

    def test_probe_rejects_empty_corpus(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CalibrationStore.probe([])


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self, probed):
        clone = CalibrationStore.from_dict(probed.to_dict())
        assert clone.to_dict() == probed.to_dict()

    def test_save_load_preserves_predictions(self, probed, tmp_path):
        path = str(tmp_path / "calib.json")
        probed.save(path)
        loaded = CalibrationStore.load(path)
        workload = PhaseWorkload("transform", 1000)
        for plan in (
            PhasePlan("transform", "sequential"),
            PhasePlan("transform", "threads", 4),
            PhasePlan("transform", "processes", 2, True),
        ):
            a = RealCostModel(probed, cpu_count=2).predict(workload, plan)
            b = RealCostModel(loaded, cpu_count=2).predict(workload, plan)
            assert a.predicted_s == b.predicted_s
            assert a.breakdown == b.breakdown

    def test_load_or_probe_persists_then_reloads(self, corpus, tmp_path):
        path = str(tmp_path / "calib.json")
        first = CalibrationStore.load_or_probe(path, corpus)
        second = CalibrationStore.load_or_probe(path, corpus)
        assert first.to_dict() == second.to_dict()

    def test_save_is_atomic(self, probed, tmp_path):
        import json
        import os

        path = str(tmp_path / "calib.json")
        probed.save(path)
        probed.save(path)  # overwrite goes through the same replace
        with open(path, "r", encoding="utf-8") as handle:
            json.load(handle)  # never a partially written file
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]

    def test_load_empty_file_names_path_and_cause(self, tmp_path):
        from repro.errors import ConfigurationError

        path = str(tmp_path / "calib.json")
        open(path, "w").close()
        with pytest.raises(ConfigurationError, match="calib.json") as err:
            CalibrationStore.load(path)
        assert "truncated" in str(err.value)
        assert "delete it" in str(err.value)

    def test_load_corrupt_json_names_path_and_cause(self, tmp_path):
        from repro.errors import ConfigurationError

        path = str(tmp_path / "calib.json")
        with open(path, "w") as handle:
            handle.write('{"phases": {"input+wc"')
        with pytest.raises(ConfigurationError, match="calib.json") as err:
            CalibrationStore.load(path)
        assert "not valid JSON" in str(err.value)

    def test_cache_serve_constant_round_trips(self, probed):
        clone = CalibrationStore.from_dict(
            dict(probed.to_dict(), cache_serve_ns_per_doc=123.0)
        )
        assert clone.cache_serve_ns_per_doc == 123.0


class TestObserveRun:
    def test_fit_from_synthetic_spans_and_ipc(self):
        """Fitting on a known-constant run converges within tolerance."""
        store = CalibrationStore(
            phases={phase: PhaseConstants() for phase in PHASES}
        )
        # Synthesize a trace whose busy time is exactly 1ms/doc in each
        # phase, and an IPC snapshot shipping exactly 100/50 bytes/doc.
        recorder = SpanRecorder()
        recorder.begin_run()
        n_docs = 200
        for phase in PHASES:
            recorder.set_phase(phase)
            start = recorder.now()
            recorder.record_worker_span(
                (phase, 0, 0, start, start + n_docs * 1e-3, n_docs, 0, 0, 0.0)
            )
        trace = RunTrace.from_recorder(recorder, {}, "synthetic", 1)

        class FakeResult:
            pass

        result = FakeResult()
        result.trace = trace
        result.ipc = {
            "phases": {
                phase: {
                    "task_pickle_bytes": 100 * n_docs,
                    "result_pickle_bytes": 50 * n_docs,
                }
                for phase in PHASES
            }
        }
        # Blending from zero adopts the measurement outright; a second
        # observation of the same run must leave it fixed.
        for _ in range(2):
            store.observe_run(result, n_docs)
        for phase in PHASES:
            constants = store.phases[phase]
            assert constants.compute_ns_per_doc == pytest.approx(1e6, rel=0.01)
            assert constants.task_bytes_per_doc == pytest.approx(100, rel=0.01)
            assert constants.result_bytes_per_doc == pytest.approx(50, rel=0.01)
        assert store.source == "observed"
        assert store.samples == 2 * n_docs

    def test_observed_real_run_stays_within_tolerance(self, corpus, probed):
        """A probe-seeded store predicts a real traced run within 10x.

        Wall-clock noise on shared CI makes tight bounds flaky; the
        planner only needs the *ordering* of candidates to be right, so
        this guards against unit errors (ns vs s, per-doc vs per-run),
        not timer jitter.
        """
        backend = make_backend("sequential")
        result = run_pipeline(corpus, backend=backend, trace=True)
        backend.close()
        model = RealCostModel(probed, cpu_count=1)
        for phase in ("input+wc", "transform"):
            predicted = model.predict(
                PhaseWorkload(phase, len(corpus)),
                PhasePlan(phase, "sequential"),
            ).predicted_s
            actual = result.phase_seconds[phase]
            assert predicted < 10 * max(actual, 1e-4)
            assert actual < 10 * max(predicted, 1e-4)


class TestObserveGate:
    """``run_pipeline(observe=...)`` controls calibration feedback."""

    def test_auto_plan_observes_by_default(self, corpus, probed):
        store = CalibrationStore.from_dict(probed.to_dict())
        before = store.samples
        run_pipeline(corpus, plan="auto", calibration=store, trace=True)
        assert store.samples > before
        assert store.source == "observed"

    def test_observe_false_leaves_the_store_untouched(self, corpus, probed):
        store = CalibrationStore.from_dict(probed.to_dict())
        snapshot = store.to_dict()
        run_pipeline(
            corpus, plan="auto", calibration=store, trace=True, observe=False
        )
        assert store.to_dict() == snapshot

    def test_observe_false_skips_the_store_save(self, corpus, tmp_path):
        path = str(tmp_path / "cal.json")
        CalibrationStore.probe(corpus).save(path)
        before = open(path).read()
        run_pipeline(
            corpus, plan="auto", calibration=path, trace=True, observe=False
        )
        assert open(path).read() == before
