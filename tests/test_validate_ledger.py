"""Tests for the strict run-ledger validator (tools/validate_ledger.py)."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.core.pipeline import run_pipeline
from repro.text.synth import MIX_PROFILE, generate_corpus

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_spec = importlib.util.spec_from_file_location(
    "validate_ledger", os.path.join(REPO, "tools", "validate_ledger.py")
)
validate_ledger = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_ledger)


def _record(run_id="r1", ts=1001.0, step="kmeans", status="ok", **extra):
    record = {
        "schema": 1,
        "run_id": run_id,
        "ts": ts,
        "step": step,
        "status": status,
        "duration_s": 0.5,
        "run": {"started": 1000.0, "kind": "pipeline", "backend": "threads-2",
                "n_docs": 10, "total_s": 1.0},
        "host": {"platform": "test", "python": "3.11.0", "cpu_count": 1},
    }
    record.update(extra)
    return record


def _ledger_dir(tmp_path, records):
    root = tmp_path / "led"
    root.mkdir(exist_ok=True)
    with open(root / "ledger.jsonl", "w", encoding="utf-8") as handle:
        for record in records:
            handle.write((record if isinstance(record, str)
                          else json.dumps(record)) + "\n")
    return str(root)


class TestValidateDir:
    def test_accepts_a_pristine_ledger(self, tmp_path):
        root = _ledger_dir(tmp_path, [
            _record(ts=1001.0, step="input+wc"),
            _record(ts=1002.0, step="kmeans"),
        ])
        records, problems = validate_ledger.validate_dir(root)
        assert problems == []
        assert len(records) == 2

    def test_accepts_a_real_pipeline_ledger(self, tmp_path):
        corpus = generate_corpus(MIX_PROFILE, scale=0.002, seed=1)
        led = str(tmp_path / "led")
        run_pipeline(corpus, ledger=led)
        run_pipeline(corpus, ledger=led)
        records, problems = validate_ledger.validate_dir(led)
        assert problems == []
        assert len(records) == 6

    def test_rejects_missing_dir_and_empty_dir(self, tmp_path):
        _, problems = validate_ledger.validate_dir(str(tmp_path / "nope"))
        assert any("not a directory" in p for p in problems)
        empty = tmp_path / "empty"
        empty.mkdir()
        _, problems = validate_ledger.validate_dir(str(empty))
        assert any("no *.jsonl" in p for p in problems)

    def test_rejects_corrupt_line_strictly(self, tmp_path):
        root = _ledger_dir(tmp_path, [_record(), '{"schema": 1, "torn'])
        _, problems = validate_ledger.validate_dir(root)
        assert any("not valid JSON" in p for p in problems)

    def test_rejects_non_increasing_timestamps_within_a_run(self, tmp_path):
        root = _ledger_dir(tmp_path, [
            _record(ts=1002.0, step="input+wc"),
            _record(ts=1002.0, step="kmeans"),
        ])
        _, problems = validate_ledger.validate_dir(root)
        assert any("strictly increasing" in p for p in problems)

    def test_newer_schema_records_pass_without_deep_checks(self, tmp_path):
        root = _ledger_dir(tmp_path, [
            _record(),
            {"schema": 2, "mystery": True},
        ])
        _, problems = validate_ledger.validate_dir(root)
        assert problems == []


class TestValidateRecord:
    def test_rejects_missing_fields(self, tmp_path):
        bad = _record()
        del bad["run_id"]
        bad["duration_s"] = -1
        bad["run"] = {"started": 1000.0}
        root = _ledger_dir(tmp_path, [bad])
        _, problems = validate_ledger.validate_dir(root)
        assert any("run_id" in p for p in problems)
        assert any("duration_s" in p for p in problems)
        assert any("'backend'" in p for p in problems)

    def test_failed_record_requires_error(self, tmp_path):
        root = _ledger_dir(tmp_path, [_record(status="failed")])
        _, problems = validate_ledger.validate_dir(root)
        assert any("'error'" in p for p in problems)
        ok_parent = tmp_path / "ok"
        ok_parent.mkdir()
        root2 = _ledger_dir(ok_parent, [
            _record(status="failed", error="boom"),
        ])
        _, problems = validate_ledger.validate_dir(root2)
        assert problems == []

    def test_rejects_unknown_status(self, tmp_path):
        root = _ledger_dir(tmp_path, [_record(status="meh")])
        _, problems = validate_ledger.validate_dir(root)
        assert any("'status'" in p for p in problems)


class TestMain:
    def test_valid_ledger_exits_zero(self, tmp_path, capsys):
        root = _ledger_dir(tmp_path, [_record()])
        assert validate_ledger.main([root]) == 0
        assert "1 valid step record(s) across 1 run(s)" in capsys.readouterr().out

    def test_single_file_accepted(self, tmp_path, capsys):
        root = _ledger_dir(tmp_path, [_record()])
        assert validate_ledger.main([os.path.join(root, "ledger.jsonl")]) == 0

    def test_corrupt_ledger_exits_one(self, tmp_path, capsys):
        root = _ledger_dir(tmp_path, ["not json at all"])
        assert validate_ledger.main([root]) == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_file_refused_with_remedy(self, tmp_path, capsys):
        root = tmp_path / "led"
        root.mkdir()
        (root / "ledger.jsonl").write_text("")
        assert validate_ledger.main([str(root)]) == 1
        err = capsys.readouterr().err
        assert "is empty" in err and "delete the damaged ledger file" in err
