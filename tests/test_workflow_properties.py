"""Property-based tests over the whole workflow.

The central correctness invariant of the reproduction: simulation
parameters (thread count, execution mode, dictionary kind, workload
scale) may change *timings* but never *results*. Hypothesis drives the
workflow over randomly generated tiny corpora and random configurations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    MemStorage,
    SimScheduler,
    build_tfidf_kmeans_workflow,
    paper_node,
)
from repro.core.cost_model import WorkloadScale
from repro.ops import KMeansOperator, TfIdfOperator
from repro.text import Corpus

# Small random documents over a compact vocabulary so clusters exist.
words = st.sampled_from(
    "alpha beta gamma delta epsilon zeta eta theta iota kappa".split()
)
documents = st.lists(words, min_size=3, max_size=20).map(" ".join)
corpora = st.lists(documents, min_size=8, max_size=16).map(
    lambda texts: Corpus.from_texts("prop", texts)
)

slow = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_workflow(corpus, mode, workers, dict_kind="map", scale=None):
    from repro.io import store_corpus

    storage = MemStorage()
    store_corpus(storage, corpus, prefix="in/")
    workflow = build_tfidf_kmeans_workflow(
        mode=mode,
        wc_dict_kind=dict_kind,
        n_clusters=3,
        max_iters=5,
        scale=scale or WorkloadScale(),
    )
    return workflow.run(
        SimScheduler(paper_node(16)),
        storage,
        inputs={"tfidf.corpus_prefix": "in/"},
        workers=workers,
    )


class TestResultInvariance:
    @slow
    @given(corpora, st.integers(1, 16))
    def test_workers_never_change_assignments(self, corpus, workers):
        base = run_workflow(corpus, "merged", 1)
        other = run_workflow(corpus, "merged", workers)
        assert (
            base.value("kmeans.clusters").assignments
            == other.value("kmeans.clusters").assignments
        )

    @slow
    @given(corpora)
    def test_mode_never_changes_assignments(self, corpus):
        merged = run_workflow(corpus, "merged", 8)
        discrete = run_workflow(corpus, "discrete", 8)
        assert (
            merged.value("kmeans.clusters").assignments
            == discrete.value("kmeans.clusters").assignments
        )

    @slow
    @given(corpora, st.sampled_from(["map", "unordered_map", "btree", "dict"]))
    def test_dictionary_kind_never_changes_assignments(self, corpus, kind):
        base = run_workflow(corpus, "merged", 4, dict_kind="map")
        other = run_workflow(corpus, "merged", 4, dict_kind=kind)
        assert (
            base.value("kmeans.clusters").assignments
            == other.value("kmeans.clusters").assignments
        )

    @slow
    @given(
        corpora,
        st.floats(1.5, 500.0),
        st.floats(1.0, 50.0),
    )
    def test_scale_changes_time_monotonically_not_results(
        self, corpus, doc_factor, vocab_factor
    ):
        unit = run_workflow(corpus, "merged", 4)
        scaled = run_workflow(
            corpus,
            "merged",
            4,
            scale=WorkloadScale(doc_factor=doc_factor, vocab_factor=vocab_factor),
        )
        assert (
            unit.value("kmeans.clusters").assignments
            == scaled.value("kmeans.clusters").assignments
        )
        assert scaled.total_s > unit.total_s


class TestTimingInvariants:
    @slow
    @given(corpora)
    def test_discrete_at_least_as_slow(self, corpus):
        merged = run_workflow(corpus, "merged", 8)
        discrete = run_workflow(corpus, "discrete", 8)
        assert discrete.total_s >= merged.total_s

    @slow
    @given(corpora, st.integers(2, 16))
    def test_more_workers_never_slower(self, corpus, workers):
        one = run_workflow(corpus, "merged", 1)
        many = run_workflow(corpus, "merged", workers)
        assert many.total_s <= one.total_s + 1e-9

    @slow
    @given(corpora)
    def test_breakdown_sums_to_total(self, corpus):
        result = run_workflow(corpus, "discrete", 8)
        assert sum(result.breakdown().values()) == pytest.approx(result.total_s)


class TestOperatorProperties:
    @slow
    @given(corpora)
    def test_tfidf_rows_unit_norm_or_all_zero(self, corpus):
        """Rows are unit vectors, except documents made entirely of
        ubiquitous terms (idf = 0 for a term in every document)."""
        result = TfIdfOperator().fit_transform(corpus)
        for row in result.matrix.iter_rows():
            norm = row.norm()
            assert norm == pytest.approx(1.0) or norm == 0.0

    @slow
    @given(corpora, st.integers(2, 4))
    def test_kmeans_inertia_history_non_increasing(self, corpus, k):
        matrix = TfIdfOperator().fit_transform(corpus).matrix
        result = KMeansOperator(n_clusters=k, max_iters=8).fit(matrix)
        history = result.inertia_history
        assert len(history) == result.n_iters
        for earlier, later in zip(history, history[1:]):
            assert later <= earlier + 1e-9
