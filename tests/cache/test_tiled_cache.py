"""Result cache × tile plane: per-tile entries, damage demotion, key sharing.

A tiled transform is cached as one manifest entry plus one entry per
tile (raw tile file bytes, checksummed by the format itself). Serving
re-hydrates the tiles into a fresh spill store one at a time — never
materializing the matrix — and any damage anywhere in the family demotes
the whole thing to a recompute. The one deliberate asymmetry: k-means
results are keyed off the *untiled* transform key, because tiled and
untiled transforms are bit-identical, so one stored clustering serves
both execution modes.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.cache import PipelineCache
from repro.core.pipeline import run_pipeline
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.text import MIX_PROFILE, generate_corpus

BUDGET = 50_000  # bytes, well under the scale-0.002 matrix footprint


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=11)


def _run(docs, cache=None, budget=None):
    return run_pipeline(
        docs,
        tfidf=TfIdfOperator(),
        kmeans=KMeansOperator(max_iters=3),
        cache=cache,
        memory_budget=budget,
    )


def _fingerprint(result):
    rows = [
        (list(row.indices), list(row.values))
        for row in result.tfidf.matrix.iter_rows()
    ]
    return (
        rows,
        result.tfidf.vocabulary,
        result.tfidf.idf,
        result.kmeans.assignments,
        result.kmeans.centroids.tobytes(),
        result.kmeans.inertia_history,
    )


def _close(result):
    close = getattr(result.tfidf.matrix, "close", None)
    if close is not None:
        close()


def _tile_entries(cache_dir):
    return glob.glob(os.path.join(cache_dir, "objects", "trtile-shard-*.pkl"))


class TestTiledServe:
    def test_cold_stores_tiles_warm_serves_bit_identically(
        self, corpus, tmp_path
    ):
        reference = _fingerprint(_run(corpus))
        cache_dir = str(tmp_path / "cache")
        cache = PipelineCache(cache_dir)

        cold = _run(corpus, cache=cache, budget=BUDGET)
        cold_fp = _fingerprint(cold)
        n_tiles = cold.tiles["tiles"]
        _close(cold)
        assert cold_fp == reference
        assert cold.cache["misses"] == 3
        # One cache entry per spilled tile, plus the manifest.
        assert len(_tile_entries(cache_dir)) == n_tiles

        warm = _run(corpus, cache=cache, budget=BUDGET)
        warm_fp = _fingerprint(warm)
        _close(warm)
        assert warm_fp == reference
        assert warm.cache["hits"] == 3 and warm.cache["misses"] == 0
        assert warm.cache["bytes_saved"] > 0

    def test_corrupt_tile_entry_demotes_family_to_recompute(
        self, corpus, tmp_path
    ):
        reference = _fingerprint(_run(corpus))
        cache_dir = str(tmp_path / "cache")
        cache = PipelineCache(cache_dir)
        _close(_run(corpus, cache=cache, budget=BUDGET))

        victim = sorted(_tile_entries(cache_dir))[1]
        with open(victim, "r+b") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            handle.seek(size // 2)
            handle.write(b"\xde\xad\xbe\xef")

        recovered = _run(corpus, cache=cache, budget=BUDGET)
        recovered_fp = _fingerprint(recovered)
        n_tiles = recovered.tiles["tiles"]
        _close(recovered)
        assert recovered_fp == reference
        # The transform recomputed (the tiled family was damaged) and
        # re-stored a complete, servable family.
        assert recovered.cache["misses"] >= 1
        assert len(_tile_entries(cache_dir)) == n_tiles
        healed = _run(corpus, cache=cache, budget=BUDGET)
        healed_fp = _fingerprint(healed)
        _close(healed)
        assert healed_fp == reference
        assert healed.cache["hits"] == 3

    def test_kmeans_entry_shared_between_tiled_and_untiled(
        self, corpus, tmp_path
    ):
        # An untiled cold run stores the clustering; a later *tiled* run
        # must serve that same k-means entry (its transform key chains
        # the untiled key on purpose — the outputs are bit-identical).
        cache = PipelineCache(str(tmp_path / "cache"))
        untiled = _run(corpus, cache=cache)
        assert untiled.cache["misses"] == 3

        tiled = _run(corpus, cache=cache, budget=BUDGET)
        tiled_fp = _fingerprint(tiled)
        _close(tiled)
        assert tiled_fp == _fingerprint(untiled)
        # wc and kmeans hit; only the tiled transform family is new.
        assert tiled.cache["hits"] >= 2

    def test_untiled_warm_run_unaffected_by_tiled_entries(
        self, corpus, tmp_path
    ):
        cache = PipelineCache(str(tmp_path / "cache"))
        _close(_run(corpus, cache=cache, budget=BUDGET))
        warm_untiled = _run(corpus, cache=cache)
        # wc + kmeans serve from the shared entries; the untiled
        # transform is its own key and recomputes once.
        assert warm_untiled.cache["hits"] >= 2
        assert warm_untiled.tiles is None
