"""Key derivation: content, config and code-version sensitivity."""

from __future__ import annotations

import pytest

from repro.cache.keys import (
    DEFAULT_SHARD_DOCS,
    CorpusFingerprint,
    code_version,
    kmeans_config,
    phase_key,
    shard_key,
    tfidf_config,
    vocab_fingerprint,
    wordcount_config,
)
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.text.corpus import Document
from repro.text.tokenizer import Tokenizer


def _doc(at: int, text: str) -> Document:
    return Document(doc_id=at, name=f"doc-{at:06d}", text=text)


class TestCorpusFingerprint:
    def test_deterministic(self):
        docs = [_doc(i, f"text {i}") for i in range(5)]
        a = CorpusFingerprint.from_docs(docs)
        b = CorpusFingerprint.from_docs(docs)
        assert a.corpus_digest == b.corpus_digest
        assert a.shard_digests == b.shard_digests

    def test_text_change_changes_digest(self):
        docs = [_doc(i, f"text {i}") for i in range(5)]
        changed = list(docs)
        changed[2] = _doc(2, "different text")
        assert (
            CorpusFingerprint.from_docs(docs).corpus_digest
            != CorpusFingerprint.from_docs(changed).corpus_digest
        )

    def test_name_change_changes_digest(self):
        docs = [_doc(i, "same text") for i in range(3)]
        renamed = list(docs)
        renamed[0] = Document(doc_id=0, name="other-name", text="same text")
        assert (
            CorpusFingerprint.from_docs(docs).corpus_digest
            != CorpusFingerprint.from_docs(renamed).corpus_digest
        )

    def test_order_is_part_of_the_key(self):
        docs = [_doc(i, f"text {i}") for i in range(4)]
        assert (
            CorpusFingerprint.from_docs(docs).corpus_digest
            != CorpusFingerprint.from_docs(list(reversed(docs))).corpus_digest
        )

    def test_plain_strings_key_on_position(self):
        fp = CorpusFingerprint.from_docs(["alpha", "beta"])
        swapped = CorpusFingerprint.from_docs(["beta", "alpha"])
        assert fp.corpus_digest != swapped.corpus_digest

    def test_shards_cover_the_corpus_contiguously(self):
        docs = [_doc(i, f"t{i}") for i in range(2 * DEFAULT_SHARD_DOCS + 5)]
        fp = CorpusFingerprint.from_docs(docs)
        assert fp.shards[0] == (0, DEFAULT_SHARD_DOCS)
        assert fp.shards[-1][1] == len(docs)
        covered = [
            at for start, stop in fp.shards for at in range(start, stop)
        ]
        assert covered == list(range(len(docs)))
        assert len(fp.shard_digests) == len(fp.shards)

    def test_tail_edit_preserves_earlier_shard_digests(self):
        docs = [_doc(i, f"t{i}") for i in range(2 * DEFAULT_SHARD_DOCS)]
        edited = list(docs)
        edited[-1] = _doc(len(docs) - 1, "edited tail")
        a = CorpusFingerprint.from_docs(docs)
        b = CorpusFingerprint.from_docs(edited)
        assert a.shard_digests[0] == b.shard_digests[0]
        assert a.shard_digests[1] != b.shard_digests[1]

    def test_append_adds_shards_without_touching_old_ones(self):
        docs = [_doc(i, f"t{i}") for i in range(2 * DEFAULT_SHARD_DOCS)]
        extended = docs + [_doc(len(docs) + i, f"new{i}") for i in range(3)]
        a = CorpusFingerprint.from_docs(docs)
        b = CorpusFingerprint.from_docs(extended)
        assert b.shard_digests[:2] == a.shard_digests
        assert len(b.shard_digests) == 3


class TestConfigKeys:
    def test_semantic_knob_changes_key(self):
        fp = CorpusFingerprint.from_docs(["a b c"])
        plain = tfidf_config(TfIdfOperator())
        filtered = tfidf_config(TfIdfOperator(min_df=2))
        assert phase_key("tr", plain, fp.corpus_digest) != phase_key(
            "tr", filtered, fp.corpus_digest
        )

    def test_tokenizer_knobs_participate(self):
        with_stop = wordcount_config(
            TfIdfOperator(tokenizer=Tokenizer(drop_stopwords=True))
        )
        without = wordcount_config(TfIdfOperator())
        assert with_stop != without

    def test_dict_kind_is_deliberately_excluded(self):
        # The equivalence suite proves dictionary implementations never
        # change output bytes, so they must not fragment the cache.
        assert wordcount_config(
            TfIdfOperator(wc_dict_kind="map")
        ) == wordcount_config(TfIdfOperator(wc_dict_kind="unordered_map"))

    def test_kmeans_seed_and_clusters_participate(self):
        base = kmeans_config(KMeansOperator())
        assert kmeans_config(KMeansOperator(seed=1)) != base
        assert kmeans_config(KMeansOperator(n_clusters=3)) != base

    def test_code_version_stable_within_process(self):
        assert code_version() == code_version()

    def test_phase_and_shard_keys_are_filename_safe(self):
        fp = CorpusFingerprint.from_docs(["a", "b"])
        cfg = wordcount_config(TfIdfOperator())
        for key in (
            phase_key("wc", cfg, fp.corpus_digest),
            shard_key("wc", cfg, fp.shard_digests[0]),
        ):
            assert "/" not in key and not key.startswith(".")

    def test_vocab_fingerprint_tracks_idf(self):
        vocab = ["alpha", "beta"]
        assert vocab_fingerprint(vocab, [1.0, 2.0]) != vocab_fingerprint(
            vocab, [1.0, 2.5]
        )
        assert vocab_fingerprint(vocab, [1.0, 2.0]) == vocab_fingerprint(
            list(vocab), [1.0, 2.0]
        )

    def test_shard_extra_context_participates(self):
        fp = CorpusFingerprint.from_docs(["a"])
        cfg = tfidf_config(TfIdfOperator())
        assert shard_key("tr", cfg, fp.shard_digests[0], extra="x") != shard_key(
            "tr", cfg, fp.shard_digests[0], extra="y"
        )
