"""End-to-end cache equivalence: served results are bit-identical.

The cache's one non-negotiable contract: a run through the cache — warm,
cold, or incremental — produces byte-for-byte the output an uncached run
would, across every backend configuration, including the raw centroid
buffer. Everything here asserts against that contract.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.cache import PipelineCache
from repro.core.pipeline import run_pipeline
from repro.errors import OperatorError
from repro.exec.process import make_backend
from repro.exec.shm import shm_available
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.ops.wordcount import WordCountStep
from repro.plan import CalibrationStore
from repro.text import MIX_PROFILE, generate_corpus
from repro.text.corpus import Document


@pytest.fixture(scope="module")
def corpus():
    """~47 documents: two content shards (32 + 15) at the default width."""
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=11)


def _operators():
    return TfIdfOperator(), KMeansOperator(max_iters=3)


def _run(docs, cache=None, backend_spec=None, **kw):
    tfidf, kmeans = _operators()
    if backend_spec is None:
        return run_pipeline(docs, tfidf=tfidf, kmeans=kmeans, cache=cache, **kw)
    name, workers, shm = backend_spec
    backend = make_backend(name, workers, shm=shm)
    try:
        return run_pipeline(
            docs, backend=backend, tfidf=tfidf, kmeans=kmeans, cache=cache, **kw
        )
    finally:
        backend.close()


def _assert_identical(a, b):
    ma, mb = a.tfidf.matrix, b.tfidf.matrix
    assert ma.n_rows == mb.n_rows and ma.n_cols == mb.n_cols
    for ra, rb in zip(ma.iter_rows(), mb.iter_rows()):
        assert ra.indices == rb.indices
        assert ra.values == rb.values
    assert a.tfidf.vocabulary == b.tfidf.vocabulary
    assert a.tfidf.idf == b.tfidf.idf
    assert a.kmeans.assignments == b.kmeans.assignments
    assert a.kmeans.centroids.tobytes() == b.kmeans.centroids.tobytes()
    assert a.kmeans.n_iters == b.kmeans.n_iters
    assert a.kmeans.inertia == b.kmeans.inertia


_BACKENDS = [("sequential", 1, None), ("threads", 2, None),
             ("processes", 2, False)]
if shm_available():
    _BACKENDS.append(("processes", 2, True))


class TestWarmServe:
    def test_cold_then_warm_bit_identical(self, corpus, tmp_path):
        reference = _run(corpus)
        cache = PipelineCache(str(tmp_path / "cache"))
        cold = _run(corpus, cache=cache)
        warm = _run(corpus, cache=cache)
        _assert_identical(cold, reference)
        _assert_identical(warm, reference)
        assert cold.cache["misses"] == 3 and cold.cache["hits"] == 0
        assert cold.cache["stored"] > 0
        assert warm.cache["hits"] == 3 and warm.cache["misses"] == 0
        assert warm.cache["stored"] == 0
        assert warm.cache["bytes_saved"] > 0

    @pytest.mark.parametrize("backend_spec", _BACKENDS,
                             ids=lambda spec: f"{spec[0]}-{spec[1]}"
                             + ("+shm" if spec[2] else ""))
    def test_every_backend_populates_and_serves_identically(
        self, corpus, tmp_path, backend_spec
    ):
        # Armed backends (sequential/threads/processes, shm or not) are
        # bit-identical among themselves including centroid bytes; the
        # armed sequential run is the reference for all of them.
        reference = _run(corpus, backend_spec=("sequential", 1, None))
        cache = PipelineCache(str(tmp_path / "cache"))
        cold = _run(corpus, cache=cache, backend_spec=backend_spec)
        warm = _run(corpus, cache=cache, backend_spec=backend_spec)
        _assert_identical(cold, reference)
        _assert_identical(warm, reference)
        assert warm.cache["hits"] == 3

    def test_dict_kind_does_not_fragment_the_cache(self, corpus, tmp_path):
        # The key deliberately excludes the dictionary implementation:
        # an entry stored under "map" serves an "unordered_map" run.
        cache = PipelineCache(str(tmp_path / "cache"))
        _run(corpus, cache=cache)
        kmeans = KMeansOperator(max_iters=3)
        warm = run_pipeline(
            corpus,
            tfidf=TfIdfOperator(wc_dict_kind="unordered_map"),
            kmeans=kmeans,
            cache=cache,
        )
        assert warm.cache["hits"] == 3
        uncached = run_pipeline(
            corpus,
            tfidf=TfIdfOperator(wc_dict_kind="unordered_map"),
            kmeans=KMeansOperator(max_iters=3),
        )
        _assert_identical(warm, uncached)

    def test_config_change_misses(self, corpus, tmp_path):
        cache = PipelineCache(str(tmp_path / "cache"))
        _run(corpus, cache=cache)
        changed = run_pipeline(
            corpus,
            tfidf=TfIdfOperator(min_df=2),
            kmeans=KMeansOperator(max_iters=3),
            cache=cache,
        )
        # Word count is min_df-independent and serves; the transform and
        # the clustering downstream of it must recompute.
        assert changed.cache["phases"]["input+wc"]["hits"] == 1
        assert changed.cache["phases"]["transform"]["misses"] == 1
        assert changed.cache["phases"]["kmeans"]["misses"] == 1

    def test_warm_run_executes_no_operator_code(
        self, corpus, tmp_path, monkeypatch
    ):
        cache = PipelineCache(str(tmp_path / "cache"))
        _run(corpus, cache=cache)

        def forbidden(*args, **kwargs):
            raise AssertionError("warm run must not recompute")

        monkeypatch.setattr(WordCountStep, "run", forbidden)
        monkeypatch.setattr(TfIdfOperator, "transform_wordcount", forbidden)
        monkeypatch.setattr(TfIdfOperator, "build_vocabulary", forbidden)
        monkeypatch.setattr(KMeansOperator, "fit", forbidden)
        warm = _run(corpus, cache=cache)
        assert warm.cache["hits"] == 3


class TestIncremental:
    def _modified(self, corpus):
        """Tail-edit the last document and append three new ones."""
        docs = list(corpus)
        tail = docs[-1]
        docs[-1] = Document(
            doc_id=tail.doc_id, name=tail.name, text=tail.text + " amended"
        )
        for i in range(3):
            docs.append(
                Document(
                    doc_id=len(docs), name=f"added-{i}", text=docs[i].text
                )
            )
        return docs

    def test_append_and_tail_edit_matches_uncached(self, corpus, tmp_path):
        cache = PipelineCache(str(tmp_path / "cache"))
        _run(corpus, cache=cache)
        modified = self._modified(corpus)
        incremental = _run(modified, cache=cache)
        _assert_identical(incremental, _run(modified))
        # The untouched leading shard must be composed, not recomputed.
        assert incremental.cache["phases"]["input+wc"]["shard_hits"] > 0

    def test_change_and_delete_matches_uncached(self, corpus, tmp_path):
        cache = PipelineCache(str(tmp_path / "cache"))
        _run(corpus, cache=cache)
        docs = list(corpus)
        changed = docs[0]
        docs[0] = Document(
            doc_id=changed.doc_id, name=changed.name, text="entirely new text"
        )
        del docs[len(docs) // 2]
        incremental = _run(docs, cache=cache)
        _assert_identical(incremental, _run(docs))

    def test_incremental_result_is_stored_for_the_next_run(
        self, corpus, tmp_path
    ):
        cache = PipelineCache(str(tmp_path / "cache"))
        _run(corpus, cache=cache)
        modified = self._modified(corpus)
        first = _run(modified, cache=cache)
        assert first.cache["stored"] > 0
        second = _run(modified, cache=cache)
        assert second.cache["hits"] == 3
        _assert_identical(second, first)


class TestEdgeCases:
    def test_empty_corpus_neither_stores_nor_serves(self, tmp_path):
        cache = PipelineCache(str(tmp_path / "cache"))
        with pytest.raises(OperatorError):
            run_pipeline([], cache=cache)
        assert glob.glob(str(tmp_path / "cache" / "objects" / "*.pkl")) == []
        assert cache.begin_run([], TfIdfOperator(), KMeansOperator()) is None

    def test_corrupt_entries_are_misses_not_crashes(self, corpus, tmp_path):
        cache = PipelineCache(str(tmp_path / "cache"))
        reference = _run(corpus, cache=cache)
        for path in glob.glob(str(tmp_path / "cache" / "objects" / "*.pkl")):
            with open(path, "wb") as handle:
                handle.write(b"not a pickle")
        recovered = _run(corpus, cache=cache)
        _assert_identical(recovered, reference)
        assert recovered.cache["hits"] == 0
        assert recovered.cache["misses"] == 3
        # The recompute repopulates the store for the next run.
        warm = _run(corpus, cache=cache)
        assert warm.cache["hits"] == 3

    def test_max_bytes_bounds_the_store(self, corpus, tmp_path):
        cache = PipelineCache(str(tmp_path / "cache"), max_bytes=2000)
        _run(corpus, cache=cache)
        assert cache.store.total_bytes <= 2000 or len(cache.store) == 1

    def test_result_carries_no_cache_section_when_uncached(self, corpus):
        assert _run(corpus).cache is None


class TestPlannedCache:
    def test_auto_plan_routes_around_cached_phases(self, corpus, tmp_path):
        calibration = CalibrationStore.load_or_probe(None, corpus)
        cache = PipelineCache(str(tmp_path / "cache"))

        def planned():
            return run_pipeline(
                corpus,
                plan="auto",
                calibration=calibration,
                tfidf=TfIdfOperator(),
                kmeans=KMeansOperator(max_iters=3),
                cache=cache,
            )

        cold = planned()
        warm = planned()
        _assert_identical(warm, cold)
        assert warm.cache["hits"] == 3
        for phase in ("input+wc", "transform", "kmeans"):
            assert warm.plan.phases[phase].cached
            assert warm.plan.phases[phase].describe() == "cached"

    def test_cache_enabled_auto_plan_never_fuses(self, corpus, tmp_path):
        # Fused intermediates never materialize parent-side, so there
        # would be nothing to store: fusion is suppressed under caching.
        calibration = CalibrationStore.load_or_probe(None, corpus)
        cache = PipelineCache(str(tmp_path / "cache"))
        result = run_pipeline(
            corpus,
            plan="auto",
            calibration=calibration,
            tfidf=TfIdfOperator(),
            kmeans=KMeansOperator(max_iters=3),
            cache=cache,
        )
        assert not result.plan.fused
        # Planned phases run on armed backends; compare against one.
        _assert_identical(result, _run(corpus, backend_spec=("sequential", 1, None)))
