"""On-disk store: round-trips, corruption demotion, atomicity, eviction."""

from __future__ import annotations

import json
import os

import pytest

from repro.cache.store import CacheStore
from repro.errors import CacheError


def _store(tmp_path, **kw) -> CacheStore:
    return CacheStore(str(tmp_path / "cache"), **kw)


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        stored = store.put("k1", {"rows": [1, 2, 3]}, seconds=0.5)
        payload, seconds, size = store.get("k1")
        assert payload == {"rows": [1, 2, 3]}
        assert seconds == 0.5
        assert size == stored
        assert "k1" in store and len(store) == 1

    def test_miss_returns_none(self, tmp_path):
        assert _store(tmp_path).get("absent") is None

    def test_flush_then_reopen_preserves_entries(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", [1, 2], seconds=0.25)
        store.flush()
        reopened = _store(tmp_path)
        payload, seconds, _size = reopened.get("k1")
        assert payload == [1, 2]
        assert seconds == 0.25

    def test_invalid_keys_rejected(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(CacheError):
            store.put(".hidden", 1)
        with pytest.raises(CacheError):
            store.put(f"up{os.sep}escape", 1)

    def test_nonpositive_budget_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            _store(tmp_path, max_bytes=0)


class TestCorruption:
    def test_corrupt_payload_is_a_miss_and_deleted(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})
        obj = os.path.join(store.root, "objects", "k1.pkl")
        with open(obj, "wb") as handle:
            handle.write(b"\x80garbage not a pickle")
        assert store.get("k1") is None
        assert "k1" not in store
        assert not os.path.exists(obj)

    def test_truncated_payload_is_a_miss(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", list(range(1000)))
        obj = os.path.join(store.root, "objects", "k1.pkl")
        blob = open(obj, "rb").read()
        with open(obj, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.get("k1") is None

    def test_corrupt_index_rebuilt_from_objects(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1}, seconds=0.7)
        store.put("k2", {"y": 2})
        store.flush()
        with open(os.path.join(store.root, "index.json"), "w") as handle:
            handle.write('{"version": 1, "entr')  # truncated mid-write
        rebuilt = _store(tmp_path)
        assert set(["k1", "k2"]) <= {k for k in ("k1", "k2") if k in rebuilt}
        payload, seconds, _ = rebuilt.get("k1")
        assert payload == {"x": 1}
        # Recovered entries lose their recorded compute time, nothing else.
        assert seconds == 0.0

    def test_index_entry_without_payload_dropped(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", 1)
        store.flush()
        os.unlink(os.path.join(store.root, "objects", "k1.pkl"))
        assert "k1" not in _store(tmp_path)


class TestAtomicity:
    def test_flush_leaves_no_temp_files(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})
        store.flush()
        leftovers = [
            name
            for root, _dirs, names in os.walk(store.root)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_index_is_valid_json_after_flush(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1}, seconds=0.1)
        store.flush()
        with open(os.path.join(store.root, "index.json")) as handle:
            payload = json.load(handle)
        assert payload["version"] == 1
        assert payload["entries"]["k1"]["seconds"] == 0.1

    def test_failed_put_leaves_previous_entry_intact(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("cannot pickle")

        with pytest.raises(RuntimeError):
            store.put("k1", Unpicklable())
        payload, _, _ = store.get("k1")
        assert payload == {"x": 1}


class TestEviction:
    def test_lru_eviction_under_budget(self, tmp_path):
        store = _store(tmp_path, max_bytes=250)
        store.put("a", b"x" * 100)
        store.put("b", b"y" * 100)
        assert store.get("a") is not None  # refresh a: b becomes LRU
        store.put("c", b"z" * 100)
        assert "b" not in store
        assert "a" in store and "c" in store

    def test_newest_entry_always_survives(self, tmp_path):
        store = _store(tmp_path, max_bytes=10)
        store.put("huge", b"x" * 1000)
        assert "huge" in store

    def test_total_bytes_tracks_entries(self, tmp_path):
        store = _store(tmp_path)
        a = store.put("a", b"x" * 10)
        b = store.put("b", b"y" * 20)
        assert store.total_bytes == a + b
        store.delete("a")
        assert store.total_bytes == b
