"""On-disk store: round-trips, corruption demotion, atomicity, eviction."""

from __future__ import annotations

import json
import os

import pytest

from repro.cache.store import CacheStore
from repro.errors import CacheError


def _store(tmp_path, **kw) -> CacheStore:
    return CacheStore(str(tmp_path / "cache"), **kw)


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        stored = store.put("k1", {"rows": [1, 2, 3]}, seconds=0.5)
        payload, seconds, size = store.get("k1")
        assert payload == {"rows": [1, 2, 3]}
        assert seconds == 0.5
        assert size == stored
        assert "k1" in store and len(store) == 1

    def test_miss_returns_none(self, tmp_path):
        assert _store(tmp_path).get("absent") is None

    def test_flush_then_reopen_preserves_entries(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", [1, 2], seconds=0.25)
        store.flush()
        reopened = _store(tmp_path)
        payload, seconds, _size = reopened.get("k1")
        assert payload == [1, 2]
        assert seconds == 0.25

    def test_invalid_keys_rejected(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(CacheError):
            store.put(".hidden", 1)
        with pytest.raises(CacheError):
            store.put(f"up{os.sep}escape", 1)

    def test_nonpositive_budget_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            _store(tmp_path, max_bytes=0)


class TestTTL:
    def test_expired_entry_is_a_miss_and_deleted(self, tmp_path):
        store = _store(tmp_path, max_age_s=1000.0)
        store.put("k1", {"x": 1})
        store._index["k1"]["stored_at"] -= 2000.0  # age it past the TTL
        obj = os.path.join(store.root, "objects", "k1.pkl")
        assert store.get("k1") is None
        assert "k1" not in store
        assert not os.path.exists(obj)

    def test_fresh_entry_survives(self, tmp_path):
        store = _store(tmp_path, max_age_s=1000.0)
        store.put("k1", {"x": 1})
        payload, _seconds, _size = store.get("k1")
        assert payload == {"x": 1}

    def test_no_ttl_means_no_expiry(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})
        store._index["k1"]["stored_at"] = 0.0  # decades old
        assert store.get("k1") is not None

    def test_nonpositive_ttl_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            _store(tmp_path, max_age_s=0)
        with pytest.raises(CacheError):
            _store(tmp_path, max_age_s=-1.0)

    def test_ttl_enforced_across_reopen(self, tmp_path):
        store = _store(tmp_path, max_age_s=1000.0)
        store.put("k1", {"x": 1})
        store._index["k1"]["stored_at"] -= 2000.0
        store.flush()
        reopened = _store(tmp_path, max_age_s=1000.0)
        assert reopened.get("k1") is None

    def test_pre_ttl_index_falls_back_to_file_mtime(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})
        del store._index["k1"]["stored_at"]  # entry written pre-TTL
        store.flush()
        reopened = _store(tmp_path, max_age_s=1000.0)
        # The payload file is brand new, so mtime keeps the entry alive.
        assert reopened.get("k1") is not None
        old = os.path.join(store.root, "objects", "k1.pkl")
        os.utime(old, (1.0, 1.0))
        again = _store(tmp_path, max_age_s=1000.0)
        del again._index["k1"]["stored_at"]
        again._index["k1"]["stored_at"] = again._mtime("k1")
        assert again.get("k1") is None

    def test_purge_expired_reports_count(self, tmp_path):
        store = _store(tmp_path, max_age_s=1000.0)
        store.put("old1", 1)
        store.put("old2", 2)
        store.put("fresh", 3)
        for key in ("old1", "old2"):
            store._index[key]["stored_at"] -= 2000.0
        assert store.purge_expired() == 2
        assert "fresh" in store and len(store) == 1


class TestInvalidate:
    def test_invalidate_one_key(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", 1)
        store.put("k2", 2)
        assert store.invalidate("k1") == 1
        assert "k1" not in store and "k2" in store
        # The deletion is flushed — a reopen must not resurrect it.
        assert "k1" not in _store(tmp_path)

    def test_invalidate_all(self, tmp_path):
        store = _store(tmp_path)
        for index in range(3):
            store.put(f"k{index}", index)
        assert store.invalidate() == 3
        assert len(store) == 0
        assert len(_store(tmp_path)) == 0

    def test_invalidate_absent_key_counts_zero(self, tmp_path):
        assert _store(tmp_path).invalidate("ghost") == 0


class TestCorruption:
    def test_corrupt_payload_is_a_miss_and_deleted(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})
        obj = os.path.join(store.root, "objects", "k1.pkl")
        with open(obj, "wb") as handle:
            handle.write(b"\x80garbage not a pickle")
        assert store.get("k1") is None
        assert "k1" not in store
        assert not os.path.exists(obj)

    def test_truncated_payload_is_a_miss(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", list(range(1000)))
        obj = os.path.join(store.root, "objects", "k1.pkl")
        blob = open(obj, "rb").read()
        with open(obj, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.get("k1") is None

    def test_corrupt_index_rebuilt_from_objects(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1}, seconds=0.7)
        store.put("k2", {"y": 2})
        store.flush()
        with open(os.path.join(store.root, "index.json"), "w") as handle:
            handle.write('{"version": 1, "entr')  # truncated mid-write
        rebuilt = _store(tmp_path)
        assert set(["k1", "k2"]) <= {k for k in ("k1", "k2") if k in rebuilt}
        payload, seconds, _ = rebuilt.get("k1")
        assert payload == {"x": 1}
        # Recovered entries lose their recorded compute time, nothing else.
        assert seconds == 0.0

    def test_index_entry_without_payload_dropped(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", 1)
        store.flush()
        os.unlink(os.path.join(store.root, "objects", "k1.pkl"))
        assert "k1" not in _store(tmp_path)


class TestAtomicity:
    def test_flush_leaves_no_temp_files(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})
        store.flush()
        leftovers = [
            name
            for root, _dirs, names in os.walk(store.root)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_index_is_valid_json_after_flush(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1}, seconds=0.1)
        store.flush()
        with open(os.path.join(store.root, "index.json")) as handle:
            payload = json.load(handle)
        assert payload["version"] == 1
        assert payload["entries"]["k1"]["seconds"] == 0.1

    def test_failed_put_leaves_previous_entry_intact(self, tmp_path):
        store = _store(tmp_path)
        store.put("k1", {"x": 1})

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("cannot pickle")

        with pytest.raises(RuntimeError):
            store.put("k1", Unpicklable())
        payload, _, _ = store.get("k1")
        assert payload == {"x": 1}


class TestEviction:
    def test_lru_eviction_under_budget(self, tmp_path):
        store = _store(tmp_path, max_bytes=250)
        store.put("a", b"x" * 100)
        store.put("b", b"y" * 100)
        assert store.get("a") is not None  # refresh a: b becomes LRU
        store.put("c", b"z" * 100)
        assert "b" not in store
        assert "a" in store and "c" in store

    def test_newest_entry_always_survives(self, tmp_path):
        store = _store(tmp_path, max_bytes=10)
        store.put("huge", b"x" * 1000)
        assert "huge" in store

    def test_total_bytes_tracks_entries(self, tmp_path):
        store = _store(tmp_path)
        a = store.put("a", b"x" * 10)
        b = store.put("b", b"y" * 20)
        assert store.total_bytes == a + b
        store.delete("a")
        assert store.total_bytes == b
