"""Repo-wide fixtures: shared-memory segments and spill dirs must never leak.

Every segment the shm plane creates is named ``repro_shm_*`` (see
:data:`repro.exec.shm.SEGMENT_PREFIX`), so on platforms with a visible
``/dev/shm`` a leak is directly observable as a leftover file. The
autouse fixture below snapshots the directory around every test and
fails any test that leaves a segment behind — close, double-close and
worker-crash paths all have to clean up to stay green. (On hosts
without ``/dev/shm`` the check degrades to a no-op; the promoted
resource_tracker warnings in ``pyproject.toml`` still cover leaks.)

The tile plane gets the same treatment: every spill directory is named
``$TMPDIR/repro_tiles_*`` (:data:`repro.tiles.SPILL_PREFIX`), so a
:class:`~repro.tiles.TileStore` that outlives its test — an unclosed
tiled matrix, a worker-side reader, an exception path that skipped
``close()`` — shows up as a leftover directory and fails that test.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.exec.shm import SEGMENT_PREFIX
from repro.tiles import SPILL_PREFIX

_SHM_DIR = "/dev/shm"


def _segments() -> set[str]:
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return set()
    return {name for name in names if name.startswith(SEGMENT_PREFIX)}


def _spill_dirs() -> set[str]:
    root = tempfile.gettempdir()
    try:
        names = os.listdir(root)
    except OSError:
        return set()
    return {name for name in names if name.startswith(SPILL_PREFIX)}


@pytest.fixture(autouse=True)
def no_shm_segment_leaks():
    if not os.path.isdir(_SHM_DIR):
        yield
        return
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, (
        f"test leaked shared-memory segment(s): {sorted(leaked)} — every "
        f"ShmArrays/ShmBroadcast must be unlinked via close()"
    )


@pytest.fixture(autouse=True)
def no_tile_spill_leaks():
    before = _spill_dirs()
    yield
    leaked = _spill_dirs() - before
    assert not leaked, (
        f"test leaked tile spill director{'y' if len(leaked) == 1 else 'ies'}: "
        f"{sorted(leaked)} — every TileStore (or the TiledCsrMatrix that "
        f"owns it) must be closed"
    )
