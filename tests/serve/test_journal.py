"""Job journal: durability discipline, loud reads, replay semantics."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.serve.journal import (
    JOURNAL_FILE,
    JOURNAL_SCHEMA,
    JobJournal,
    JournalCorruptionWarning,
    read_journal,
    replay,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

_spec = importlib.util.spec_from_file_location(
    "validate_journal", os.path.join(REPO, "tools", "validate_journal.py")
)
validate_journal = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_journal)


class TestWriter:
    def test_append_stamps_schema_ts_pid(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        record = journal.job_event("j1", "submitted", spec={"input": "x"})
        assert record["schema"] == JOURNAL_SCHEMA
        assert record["pid"] == os.getpid()
        assert record["ts"] > 0
        lines = open(journal.path, encoding="utf-8").read().splitlines()
        assert json.loads(lines[0]) == record

    def test_timestamps_strictly_increase(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        stamps = [
            journal.job_event("j1", "submitted")["ts"],
            journal.job_event("j1", "admitted")["ts"],
            journal.daemon_event("start")["ts"],
        ]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_unknown_events_rejected(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        with pytest.raises(ConfigurationError):
            journal.job_event("j1", "teleported")
        with pytest.raises(ConfigurationError):
            journal.daemon_event("submitted")  # a job event, not daemon
        with pytest.raises(ConfigurationError):
            journal.job_event("", "submitted")

    def test_empty_root_rejected(self):
        with pytest.raises(ConfigurationError):
            JobJournal("")


class TestReadJournal:
    def test_missing_file_is_empty_history(self, tmp_path):
        records, problems = read_journal(str(tmp_path))
        assert records == [] and problems == []

    def test_round_trip_sorted_by_ts(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.job_event("j1", "submitted")
        journal.job_event("j1", "admitted")
        records, problems = read_journal(str(tmp_path))
        assert problems == []
        assert [r["event"] for r in records] == ["submitted", "admitted"]
        assert records[0]["ts"] < records[1]["ts"]

    def test_torn_tail_skipped_loudly(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.job_event("j1", "submitted")
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "kind": "job", "eve')  # torn append
        with pytest.warns(JournalCorruptionWarning):
            records, problems = read_journal(str(tmp_path))
        assert len(records) == 1
        assert len(problems) == 1 and "corrupt" in problems[0]

    def test_newer_schema_and_foreign_lines_skipped(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.job_event("j1", "submitted")
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "schema": JOURNAL_SCHEMA + 1, "kind": "job",
                "event": "warped", "ts": 1.0, "pid": 1,
            }) + "\n")
            handle.write('[1, 2, 3]\n')
            handle.write(json.dumps({"schema": 1, "kind": "job"}) + "\n")
        with pytest.warns(JournalCorruptionWarning):
            records, problems = read_journal(str(tmp_path))
        assert len(records) == 1
        assert len(problems) == 3


class TestReplay:
    def _journal(self, tmp_path) -> JobJournal:
        return JobJournal(str(tmp_path))

    def test_folds_lifecycle(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.job_event("j1", "submitted", spec={"input": "corpus"})
        journal.job_event("j1", "admitted", attempt=0)
        journal.job_event("j1", "running", attempt=1)
        journal.job_event("j1", "done", digest="d" * 8, total_s=0.5)
        records, _ = read_journal(str(tmp_path))
        view = replay(records)["j1"]
        assert view.state == "done" and view.terminal
        assert view.spec == {"input": "corpus"}
        assert view.attempt == 1
        assert view.digest == "d" * 8
        assert view.total_s == 0.5
        assert view.events == ["submitted", "admitted", "running", "done"]

    def test_terminal_state_is_sticky(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.job_event("j1", "submitted")
        journal.job_event("j1", "done", digest="d", total_s=0.1)
        journal.job_event("j1", "running", attempt=9)  # must not resurrect
        records, _ = read_journal(str(tmp_path))
        view = replay(records)["j1"]
        assert view.state == "done"
        assert view.attempt == 0  # the late record changed nothing

    def test_shed_and_failed_capture_why(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.job_event("j1", "submitted")
        journal.job_event("j1", "shed", reason="queue-full")
        journal.job_event("j2", "submitted")
        journal.job_event("j2", "failed", error="boom")
        views = replay(read_journal(str(tmp_path))[0])
        assert views["j1"].state == "shed" and views["j1"].reason == "queue-full"
        assert views["j2"].state == "failed" and views["j2"].error == "boom"

    def test_daemon_records_ignored(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.daemon_event("start")
        journal.job_event("j1", "submitted")
        journal.daemon_event("shutdown")
        assert list(replay(read_journal(str(tmp_path))[0])) == ["j1"]


class TestValidatorTool:
    """The strict CI stance in tools/validate_journal.py."""

    def _write(self, tmp_path, lines) -> str:
        path = tmp_path / JOURNAL_FILE
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(
                    (line if isinstance(line, str) else json.dumps(line)) + "\n"
                )
        return str(tmp_path)

    def _job(self, event, job_id="j1", ts=1.0, **extra):
        record = {"schema": 1, "kind": "job", "job_id": job_id,
                  "event": event, "ts": ts, "pid": 7}
        record.update(extra)
        return record

    def test_accepts_a_real_journal(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.daemon_event("start")
        journal.job_event("j1", "submitted", spec={})
        journal.job_event("j1", "admitted", attempt=0)
        journal.job_event("j1", "running", attempt=1)
        journal.job_event("j1", "done", digest="d", total_s=0.2)
        records, problems = validate_journal.validate_state_dir(str(tmp_path))
        assert problems == []
        assert len(records) == 5

    def test_double_completion_is_an_error(self, tmp_path):
        root = self._write(tmp_path, [
            self._job("submitted", ts=1.0),
            self._job("admitted", ts=2.0),
            self._job("running", ts=3.0),
            self._job("done", ts=4.0, digest="d", total_s=0.1),
            self._job("done", ts=5.0, digest="d", total_s=0.1),
        ])
        _, problems = validate_journal.validate_state_dir(root)
        assert any("resurrected" in p or "exactly-once" in p for p in problems)

    def test_illegal_transition_is_an_error(self, tmp_path):
        root = self._write(tmp_path, [
            self._job("submitted", ts=1.0),
            self._job("running", ts=2.0),  # skipped admission
        ])
        _, problems = validate_journal.validate_state_dir(root)
        assert any("illegal transition" in p for p in problems)

    def test_torn_line_is_an_error_not_a_skip(self, tmp_path):
        root = self._write(tmp_path, [
            self._job("submitted", ts=1.0),
            '{"schema": 1, "kind": "jo',
        ])
        _, problems = validate_journal.validate_state_dir(root)
        assert any("not valid JSON" in p for p in problems)

    def test_expect_done_gates_exact_count(self, tmp_path):
        root = self._write(tmp_path, [
            self._job("submitted", ts=1.0),
            self._job("admitted", ts=2.0),
            self._job("running", ts=3.0),
            self._job("done", ts=4.0, digest="d", total_s=0.1),
        ])
        assert validate_journal.main([root, "--expect-done", "1"]) == 0
        assert validate_journal.main([root, "--expect-done", "2"]) == 1

    def test_missing_journal_fails(self, tmp_path):
        assert validate_journal.main([str(tmp_path)]) == 1
