"""Crash matrix: SIGKILL-equivalent at every lifecycle stage, exactly once.

Each case arms ``REPRO_SERVE_KILL_AT`` so a real daemon subprocess dies
via ``os._exit`` (no cleanup, no atexit — the closest deterministic
stand-in for SIGKILL) right after one journal append, then restarts a
second daemon over the same state directory. Whatever the stage, every
job must finish exactly once with the same digest, and the surviving
journal must pass the strict validator.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

import pytest

from repro.io.corpus_io import store_corpus
from repro.io.storage import FsStorage
from repro.serve.daemon import CRASH_EXIT_CODE, KILL_STAGES
from repro.serve.journal import read_journal, replay
from repro.serve.transport import read_result, submit_job
from repro.text.synth import MIX_PROFILE, generate_corpus

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

_spec = importlib.util.spec_from_file_location(
    "validate_journal", os.path.join(REPO, "tools", "validate_journal.py")
)
validate_journal = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_journal)

N_JOBS = 2


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("corpus"))
    store_corpus(FsStorage(out), generate_corpus(MIX_PROFILE, scale=0.002,
                                                 seed=1))
    return out


def _run_daemon(state: str, *, kill_at: str | None) -> int:
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    if kill_at is not None:
        env["REPRO_SERVE_KILL_AT"] = kill_at
    else:
        env.pop("REPRO_SERVE_KILL_AT", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "run",
         "--state", state, "--executors", "1", "--workers", "2",
         "--idle-exit", "0.5", "--drain-deadline", "60"],
        env=env, capture_output=True, text=True, timeout=240,
    )
    assert proc.returncode in (0, CRASH_EXIT_CODE), proc.stderr
    return proc.returncode


@pytest.mark.parametrize("stage", KILL_STAGES)
def test_kill_at_stage_then_recover_exactly_once(
    stage, tmp_path, corpus_dir
):
    state = str(tmp_path / "state")
    job_ids = [
        submit_job(state, {
            "input": corpus_dir, "iters": 2, "job_id": f"{stage}-{i}",
        })
        for i in range(N_JOBS)
    ]

    # First daemon dies mid-lifecycle at the armed stage…
    assert _run_daemon(state, kill_at=stage) == CRASH_EXIT_CODE
    # …and a restart over the same state dir finishes the backlog.
    assert _run_daemon(state, kill_at=None) == 0

    records, problems = read_journal(state)
    assert problems == []
    views = replay(records)
    digests = set()
    for job_id in job_ids:
        view = views[job_id]
        assert view.state == "done", (job_id, view.state, view.error)
        assert view.events.count("done") == 1
        digests.add(view.digest)
        result = read_result(state, job_id)
        assert result is not None and result["digest"] == view.digest
    # Deterministic pipeline: a re-run after the crash is bit-identical.
    assert len(digests) == 1

    _, strict_problems = validate_journal.validate_state_dir(state)
    assert strict_problems == []
    assert validate_journal.main([state, "--expect-done", str(N_JOBS)]) == 0


def test_crash_between_result_write_and_done_rewrites_identically(
    tmp_path, corpus_dir
):
    """The nastiest window: result durable, ``done`` not yet appended.

    The restarted daemon must re-run the job (the journal, not the
    results directory, is the source of truth) and overwrite the result
    with bit-identical content.
    """
    state = str(tmp_path / "state")
    job_id = submit_job(state, {
        "input": corpus_dir, "iters": 2, "job_id": "window-1",
    })
    assert _run_daemon(state, kill_at="completing") == CRASH_EXIT_CODE
    orphaned = read_result(state, job_id)
    assert orphaned is not None  # written before the crash
    views = replay(read_journal(state)[0])
    assert views[job_id].state == "running"  # done was never appended

    assert _run_daemon(state, kill_at=None) == 0
    views = replay(read_journal(state)[0])
    assert views[job_id].state == "done"
    assert views[job_id].attempt == 2  # the re-run is honest in the journal
    final = read_result(state, job_id)
    assert final["digest"] == orphaned["digest"]
