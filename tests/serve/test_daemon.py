"""In-process serve daemon: admission, isolation, recovery, lifecycle."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.io.corpus_io import store_corpus
from repro.io.storage import FsStorage
from repro.serve.daemon import ServeConfig, ServeDaemon, _QueuedJob
from repro.serve.journal import JobJournal, read_journal, replay
from repro.serve.transport import (
    INBOX_DIR,
    LOCK_FILE,
    read_result,
    request_drain,
    submit_job,
    write_heartbeat,
)
from repro.text.synth import MIX_PROFILE, generate_corpus


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("corpus"))
    store_corpus(FsStorage(out), generate_corpus(MIX_PROFILE, scale=0.002,
                                                 seed=1))
    return out


def _config(tmp_path, **kw) -> ServeConfig:
    defaults = dict(
        state=str(tmp_path / "state"),
        backend="threads",
        workers=2,
        executors=1,
        idle_exit_s=0.3,
        drain_deadline_s=30.0,
        heartbeat_s=0.05,
        poll_s=0.02,
    )
    defaults.update(kw)
    return ServeConfig(**defaults)


def _events(state: str, job_id: str) -> list[str]:
    records, _ = read_journal(state)
    return [r["event"] for r in records
            if r.get("kind") == "job" and r.get("job_id") == job_id]


class TestHappyPath:
    def test_single_job_completes(self, tmp_path, corpus_dir):
        config = _config(tmp_path)
        job_id = submit_job(config.state, {"input": corpus_dir, "iters": 2})
        daemon = ServeDaemon(config)
        assert daemon.run() == 0
        assert daemon.stats.done == 1 and daemon.stats.failed == 0

        view = replay(read_journal(config.state)[0])[job_id]
        assert view.state == "done"
        result = read_result(config.state, job_id)
        assert result is not None and result["digest"] == view.digest
        # Completed work feeds the planner's calibration and the ledger.
        assert os.path.isfile(config.calibration_path)
        assert os.path.isfile(os.path.join(config.ledger_path, "ledger.jsonl"))

    def test_duplicate_submission_runs_once(self, tmp_path, corpus_dir):
        config = _config(tmp_path)
        spec = {"input": corpus_dir, "iters": 2, "job_id": "dup-1"}
        submit_job(config.state, spec)
        assert ServeDaemon(config).run() == 0
        # Resubmitting a completed id must be a no-op, not a second run.
        submit_job(config.state, spec)
        assert ServeDaemon(config).run() == 0
        assert _events(config.state, "dup-1").count("done") == 1
        inbox = os.path.join(config.state, INBOX_DIR)
        assert [n for n in os.listdir(inbox) if n.endswith(".json")] == []

    def test_poisoned_job_cannot_take_down_the_service(
        self, tmp_path, corpus_dir
    ):
        config = _config(tmp_path)
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        bad = submit_job(config.state, {"input": empty, "job_id": "a-bad"})
        good = submit_job(
            config.state, {"input": corpus_dir, "iters": 2, "job_id": "b-good"}
        )
        daemon = ServeDaemon(config)
        assert daemon.run() == 0
        views = replay(read_journal(config.state)[0])
        assert views[bad].state == "failed"
        assert "empty corpus" in views[bad].error
        assert views[good].state == "done"
        assert daemon.stats.done == 1 and daemon.stats.failed == 1


class TestAdmission:
    def test_queue_full_sheds_with_reason(self, tmp_path, corpus_dir):
        config = _config(tmp_path, max_depth=1)
        ids = [
            submit_job(config.state,
                       {"input": corpus_dir, "job_id": f"q-{i}"})
            for i in range(3)
        ]
        daemon = ServeDaemon(config)
        daemon._scan_inbox()  # no executors: the queue cannot drain
        views = replay(read_journal(config.state)[0])
        states = [views[job_id].state for job_id in ids]
        assert states.count("admitted") == 1
        assert states.count("shed") == 2
        shed = [views[j] for j in ids if views[j].state == "shed"]
        assert all("queue-full" in view.reason for view in shed)
        assert daemon.stats.shed == 2

    def test_unreadable_submission_quarantined(self, tmp_path):
        config = _config(tmp_path)
        daemon = ServeDaemon(config)
        inbox = os.path.join(config.state, INBOX_DIR)
        with open(os.path.join(inbox, "garbage.json"), "w") as handle:
            handle.write("{not json")
        daemon._scan_inbox()
        assert os.path.isfile(os.path.join(inbox, "garbage.json.bad"))
        view = replay(read_journal(config.state)[0])["garbage"]
        assert view.state == "shed"
        assert "unreadable submission" in view.reason

    def test_spec_without_input_rejected_at_submit(self, tmp_path):
        with pytest.raises(ConfigurationError):
            submit_job(str(tmp_path / "state"), {"iters": 2})

    def test_breaker_drain_sheds_new_admissions(self, tmp_path, corpus_dir):
        config = _config(tmp_path)
        daemon = ServeDaemon(config)
        daemon._trip_breaker("synthetic pool loss")
        assert not daemon._admit(
            _QueuedJob("late-1", {"input": corpus_dir})
        )
        records, _ = read_journal(config.state)
        assert any(
            r.get("kind") == "daemon" and r["event"] == "breaker-open"
            for r in records
        )
        view = replay(records)["late-1"]
        assert view.state == "shed" and "draining" in view.reason


class TestRecovery:
    def _orphan_journal(self, state: str, attempt: int, spec: dict) -> None:
        journal = JobJournal(state)
        journal.job_event("orph-1", "submitted", spec=spec)
        journal.job_event("orph-1", "admitted", attempt=0)
        journal.job_event("orph-1", "running", attempt=attempt)

    def test_orphan_rerun_to_done(self, tmp_path, corpus_dir):
        config = _config(tmp_path)
        os.makedirs(config.state, exist_ok=True)
        self._orphan_journal(config.state, 1, {"input": corpus_dir,
                                               "iters": 2})
        daemon = ServeDaemon(config)
        assert daemon.run() == 0
        view = replay(read_journal(config.state)[0])["orph-1"]
        assert view.state == "done"
        assert daemon.stats.recovered == 1
        assert "requeued" in view.events

    def test_orphan_policy_fail(self, tmp_path, corpus_dir):
        config = _config(tmp_path, orphan_policy="fail")
        os.makedirs(config.state, exist_ok=True)
        self._orphan_journal(config.state, 1, {"input": corpus_dir})
        daemon = ServeDaemon(config)
        outcome = daemon.recover()
        assert outcome["failed"] == 1 and outcome["orphaned"] == 1
        view = replay(read_journal(config.state)[0])["orph-1"]
        assert view.state == "failed" and "orphaned" in view.error

    def test_orphan_with_spent_attempt_budget_fails(
        self, tmp_path, corpus_dir
    ):
        config = _config(tmp_path, max_attempts=2)
        os.makedirs(config.state, exist_ok=True)
        self._orphan_journal(config.state, 2, {"input": corpus_dir})
        ServeDaemon(config).recover()
        view = replay(read_journal(config.state)[0])["orph-1"]
        assert view.state == "failed"
        assert "attempt budget spent" in view.error

    def test_queued_jobs_recovered_without_new_admission_records(
        self, tmp_path, corpus_dir
    ):
        config = _config(tmp_path)
        os.makedirs(config.state, exist_ok=True)
        journal = JobJournal(config.state)
        journal.job_event("q-1", "submitted",
                          spec={"input": corpus_dir, "iters": 2})
        journal.job_event("q-1", "admitted", attempt=0)
        daemon = ServeDaemon(config)
        assert daemon.run() == 0
        events = _events(config.state, "q-1")
        assert events.count("admitted") == 1  # the decision stood
        assert events.count("done") == 1


class TestLifecycle:
    def test_drain_request_halts_new_work_then_next_run_completes(
        self, tmp_path, corpus_dir
    ):
        config = _config(tmp_path, idle_exit_s=None)
        job_id = submit_job(config.state,
                            {"input": corpus_dir, "iters": 2})
        request_drain(config.state)
        t0 = time.monotonic()
        assert ServeDaemon(config).run() == 0
        assert time.monotonic() - t0 < 10.0  # drained, did not serve
        view = replay(read_journal(config.state)[0]).get(job_id)
        assert view is None or view.state != "done"
        # The drain marker is consumed at shutdown; the next daemon serves.
        second = ServeDaemon(_config(tmp_path))
        assert second.run() == 0
        assert _events(config.state, job_id).count("done") == 1

    def test_live_daemon_lock_refused(self, tmp_path):
        config = _config(tmp_path)
        os.makedirs(config.state, exist_ok=True)
        with open(os.path.join(config.state, LOCK_FILE), "w") as handle:
            json.dump({"pid": os.getpid()}, handle)
        write_heartbeat(config.state, "serving", 1)  # fresh + pid alive
        with pytest.raises(ConfigurationError):
            ServeDaemon(config).run()

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ServeConfig(state="")
        with pytest.raises(ConfigurationError):
            ServeConfig(state=str(tmp_path), max_depth=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(state=str(tmp_path), orphan_policy="shrug")
