"""Tests for the benchmark-envelope validator (tools/validate_bench.py)."""

from __future__ import annotations

import importlib.util
import json
import os

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_spec = importlib.util.spec_from_file_location(
    "validate_bench", os.path.join(REPO, "tools", "validate_bench.py")
)
validate_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_bench)


def _record(mode="backends", **overrides):
    record = {
        "benchmark": "wallclock",
        "mode": mode,
        "profile": "mix",
        "scale": 0.002,
        "n_docs": 47,
        "repeats": 1,
        "kmeans_iters": 2,
        "host": {"platform": "linux", "python": "3.12", "cpu_count": 1},
        "config": {"workers": [1, 2]},
        "runs": [{"total_s": 0.1, "output_identical": True}],
    }
    if mode == "plan":
        record["planned_vs_fixed"] = {"within_tolerance": True}
        record["fusion"] = None
    if mode == "cache":
        snapshot = {
            "hits": 3, "misses": 0, "bytes_saved": 1e6, "seconds_saved": 0.5
        }
        record["cache_summary"] = {"warm_speedup_vs_uncached": 10.0}
        record["runs"] = [
            {"scenario": "uncached", "total_s": 0.5, "ok": True},
            {"scenario": "warm", "total_s": 0.05, "ok": True,
             "cache": dict(snapshot)},
        ]
    if mode == "serve":
        counters = {
            "jobs": 4, "done": 4, "failed": 0, "shed": 0,
            "recovered": 0, "lost": 0, "double_completed": 0,
        }
        record["serve_summary"] = {
            "reference_digest": "d" * 16, "shed": 0, "recovered": 1,
            "lost": 0, "double_completed": 0, "latency_p50_s": 0.4,
            "latency_p95_s": 0.9, "throughput_jobs_per_s": 5.0,
            "all_ok": True,
        }
        record["runs"] = [
            dict(counters, scenario="steady", total_s=0.8, ok=True),
            dict(counters, scenario="crash-recovery", total_s=1.1,
                 ok=True, recovered=1),
        ]
    if mode == "oocore":
        record["schema"] = 2
        record["peak_rss_kb"] = 200_000
        record["oocore_summary"] = {
            "matrix_bytes": 1_000_000, "all_identical": True,
            "all_under_budget": True,
        }
        record["runs"] = [
            {"label": "untiled", "memory_budget": None, "total_s": 0.5,
             "peak_rss_kb": 200_000, "ok": True},
            {"label": "budget-0.25x", "memory_budget": 250_000,
             "total_s": 0.6, "peak_rss_kb": 150_000, "ok": True,
             "tiles": {"tiles": 8, "peak_pinned_bytes": 240_000}},
        ]
    record.update(overrides)
    return record


class TestValidate:
    def test_accepts_a_list_of_well_formed_records(self):
        assert validate_bench.validate([_record(), _record(mode="plan")]) == []

    def test_accepts_a_legacy_single_record(self):
        assert validate_bench.validate(_record()) == []

    def test_rejects_missing_envelope_key(self):
        record = _record()
        del record["host"]
        problems = validate_bench.validate([record])
        assert any("host" in p for p in problems)

    def test_rejects_unknown_mode(self):
        problems = validate_bench.validate([_record(mode="vibes")])
        assert any("unknown mode" in p for p in problems)

    def test_rejects_wrong_benchmark_name(self):
        problems = validate_bench.validate([_record(benchmark="latency")])
        assert any("wallclock" in p for p in problems)

    def test_rejects_empty_runs(self):
        problems = validate_bench.validate([_record(runs=[])])
        assert any("non-empty" in p for p in problems)

    def test_rejects_failed_self_check(self):
        record = _record(
            runs=[{"total_s": 0.1, "output_identical": True, "ok": False}]
        )
        problems = validate_bench.validate([record])
        assert any("self-check" in p for p in problems)

    def test_ok_takes_precedence_over_output_identical(self):
        # A quarantine run may legitimately differ from the reference as
        # long as its own self-check ('ok') passes.
        record = _record(
            runs=[{"total_s": 0.1, "output_identical": False, "ok": True}]
        )
        assert validate_bench.validate([record]) == []

    def test_plan_record_needs_planned_vs_fixed(self):
        record = _record(mode="plan")
        del record["planned_vs_fixed"]
        problems = validate_bench.validate([record])
        assert any("planned_vs_fixed" in p for p in problems)

    def test_plan_record_outside_tolerance_fails(self):
        record = _record(
            mode="plan", planned_vs_fixed={"within_tolerance": False}
        )
        problems = validate_bench.validate([record])
        assert any("tolerance" in p for p in problems)

    def test_plan_record_fusion_must_pass_when_present(self):
        record = _record(mode="plan", fusion={"ok": False})
        problems = validate_bench.validate([record])
        assert any("fusion" in p for p in problems)

    def test_empty_file_is_invalid(self):
        assert validate_bench.validate([]) != []

    def test_cache_record_round_trips(self):
        assert validate_bench.validate([_record(mode="cache")]) == []

    def test_cache_record_needs_summary(self):
        record = _record(mode="cache")
        del record["cache_summary"]
        problems = validate_bench.validate([record])
        assert any("cache_summary" in p for p in problems)

    def test_cached_run_needs_accounting_snapshot(self):
        record = _record(mode="cache")
        del record["runs"][1]["cache"]
        problems = validate_bench.validate([record])
        assert any("accounting snapshot" in p for p in problems)

    def test_cached_run_snapshot_needs_every_counter(self):
        record = _record(mode="cache")
        del record["runs"][1]["cache"]["seconds_saved"]
        problems = validate_bench.validate([record])
        assert any("seconds_saved" in p for p in problems)

    def test_oocore_record_round_trips(self):
        assert validate_bench.validate([_record(mode="oocore")]) == []

    def test_oocore_record_needs_summary(self):
        record = _record(mode="oocore")
        del record["oocore_summary"]
        problems = validate_bench.validate([record])
        assert any("oocore_summary" in p for p in problems)

    def test_oocore_run_needs_rss(self):
        record = _record(mode="oocore")
        del record["runs"][1]["peak_rss_kb"]
        problems = validate_bench.validate([record])
        assert any("peak_rss_kb" in p for p in problems)

    def test_oocore_budgeted_run_needs_tiles_snapshot(self):
        record = _record(mode="oocore")
        del record["runs"][1]["tiles"]
        problems = validate_bench.validate([record])
        assert any("tiles" in p for p in problems)

    def test_oocore_pinned_over_budget_fails(self):
        record = _record(mode="oocore")
        record["runs"][1]["tiles"]["peak_pinned_bytes"] = 250_001
        problems = validate_bench.validate([record])
        assert any("peak_pinned_bytes" in p for p in problems)

    def test_oocore_needs_a_run_under_the_matrix_footprint(self):
        # Every budget comfortably above matrix_bytes proves nothing —
        # the out-of-core case is the point of the mode.
        record = _record(mode="oocore")
        record["runs"][1]["memory_budget"] = 2_000_000
        problems = validate_bench.validate([record])
        assert any("memory_budget < " in p for p in problems)

    def test_serve_record_round_trips(self):
        assert validate_bench.validate([_record(mode="serve")]) == []

    def test_serve_record_needs_summary(self):
        record = _record(mode="serve")
        del record["serve_summary"]
        problems = validate_bench.validate([record])
        assert any("serve_summary" in p for p in problems)

    def test_serve_lost_job_fails_the_record(self):
        record = _record(mode="serve")
        record["serve_summary"]["lost"] = 1
        problems = validate_bench.validate([record])
        assert any("exactly-once" in p for p in problems)

    def test_serve_double_completion_fails_the_record(self):
        record = _record(mode="serve")
        record["serve_summary"]["double_completed"] = 2
        problems = validate_bench.validate([record])
        assert any("exactly-once" in p for p in problems)

    def test_serve_summary_needs_latency_percentiles(self):
        record = _record(mode="serve")
        del record["serve_summary"]["latency_p95_s"]
        problems = validate_bench.validate([record])
        assert any("latency_p95_s" in p for p in problems)

    def test_serve_run_needs_every_counter(self):
        record = _record(mode="serve")
        del record["runs"][0]["shed"]
        problems = validate_bench.validate([record])
        assert any("lacks integer 'shed'" in p for p in problems)

    def test_schema2_record_needs_rss(self):
        record = _record(schema=2)
        problems = validate_bench.validate([record])
        assert any("peak_rss_kb" in p for p in problems)
        assert validate_bench.validate([_record(schema=2, peak_rss_kb=1)]) == []

    def test_historical_record_without_schema_is_grandfathered(self):
        record = _record()
        assert "schema" not in record and "peak_rss_kb" not in record
        assert validate_bench.validate([record]) == []

    def test_bad_schema_value_is_rejected(self):
        problems = validate_bench.validate([_record(schema="two")])
        assert any("schema" in p for p in problems)

    def test_uncached_reference_run_needs_no_snapshot(self):
        # The uncached baseline never touches the cache; demanding a
        # snapshot from it would force a fake one into the record.
        record = _record(mode="cache")
        assert "cache" not in record["runs"][0]
        assert validate_bench.validate([record]) == []


class TestCli:
    def test_committed_trajectory_passes(self, capsys):
        path = os.path.join(REPO, "BENCH_wallclock.json")
        assert validate_bench.main([path]) == 0
        assert "valid record" in capsys.readouterr().out

    def test_broken_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps([_record(mode="vibes")]))
        assert validate_bench.main([str(path)]) == 1
        assert "unknown mode" in capsys.readouterr().err

    def test_empty_file_names_truncation(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text("")
        assert validate_bench.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "truncated" in err
        assert "version control" in err

    def test_truncated_json_names_corruption(self, tmp_path, capsys):
        # The first half of a real trajectory: what a killed non-atomic
        # writer would have left behind.
        blob = json.dumps([_record(), _record(mode="plan")])
        path = tmp_path / "bench.json"
        path.write_text(blob[: len(blob) // 2])
        assert validate_bench.main([str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_unreadable_path_exits_nonzero(self, tmp_path, capsys):
        assert validate_bench.main([str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().err
