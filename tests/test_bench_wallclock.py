"""Wall-clock benchmark harness and its CLI tool."""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.bench.wallclock import bench_wallclock

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestBenchWallclock:
    def test_record_structure_and_equivalence(self):
        record = bench_wallclock(
            scale=0.002, workers=(1, 2), repeats=1, kmeans_iters=2
        )
        assert record["benchmark"] == "wallclock"
        assert record["profile"] == "mix"
        assert record["n_docs"] > 0
        assert record["host"]["cpu_count"] == os.cpu_count()

        runs = record["runs"]
        # sequential once, then 2 worker counts x 2 pooled backends.
        assert len(runs) == 1 + 2 * 2
        assert runs[0]["backend"] == "sequential"
        for run in runs:
            assert run["backend"] in ("sequential", "threads", "processes")
            assert set(run["phases"]) == {"input+wc", "transform", "kmeans"}
            assert run["total_s"] > 0
            assert run["speedup_vs_sequential"] > 0
            assert run["output_identical"] is True

    def test_single_backend_sweep(self):
        record = bench_wallclock(
            scale=0.002, backends=("sequential",), repeats=1, kmeans_iters=1
        )
        assert [run["backend"] for run in record["runs"]] == ["sequential"]
        assert record["runs"][0]["speedup_vs_sequential"] == 1.0


class TestBenchWallclockTool:
    def test_tiny_smoke_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_wallclock.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable,
                os.path.join(REPO, "tools", "bench_wallclock.py"),
                "--tiny",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        record = json.loads(out.read_text())
        assert record["benchmark"] == "wallclock"
        assert all(run["output_identical"] for run in record["runs"])
        backends = {run["backend"] for run in record["runs"]}
        assert backends == {"sequential", "threads", "processes"}
        for run in record["runs"]:
            assert {"backend", "workers", "phases", "total_s"} <= set(run)
