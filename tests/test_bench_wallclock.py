"""Wall-clock benchmark harness and its CLI tool."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from types import SimpleNamespace

import pytest

import repro.bench.wallclock as wallclock_module
from repro.bench.wallclock import (
    _best_of,
    bench_cache,
    bench_ipc_sweep,
    bench_read_sweep,
    bench_wallclock,
)
from repro.errors import BenchmarkError
from repro.exec.shm import shm_available

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestBenchWallclock:
    def test_record_structure_and_equivalence(self):
        record = bench_wallclock(
            scale=0.002, workers=(1, 2), repeats=1, kmeans_iters=2
        )
        assert record["benchmark"] == "wallclock"
        assert record["mode"] == "backends"
        assert record["profile"] == "mix"
        assert record["n_docs"] > 0
        assert record["host"]["cpu_count"] == os.cpu_count()
        assert record["config"]["workers"] == [1, 2]

        runs = record["runs"]
        # sequential once, then 2 worker counts x 2 pooled backends.
        assert len(runs) == 1 + 2 * 2
        assert runs[0]["backend"] == "sequential"
        for run in runs:
            assert run["backend"] in ("sequential", "threads", "processes")
            assert set(run["phases"]) == {"input+wc", "transform", "kmeans"}
            assert run["total_s"] > 0
            assert run["speedup_vs_sequential"] > 0
            assert run["output_identical"] is True
            assert "ipc" in run  # per-run transport accounting

    def test_single_backend_sweep(self):
        record = bench_wallclock(
            scale=0.002, backends=("sequential",), repeats=1, kmeans_iters=1
        )
        assert [run["backend"] for run in record["runs"]] == ["sequential"]
        assert record["runs"][0]["speedup_vs_sequential"] == 1.0

    def test_traced_sweep_embeds_utilization(self):
        record = bench_wallclock(
            scale=0.002, backends=("processes",), workers=(2,),
            repeats=1, kmeans_iters=1, trace=True,
        )
        (run,) = record["runs"]
        assert run["output_identical"] is True
        assert set(run["utilization"]) == {"input+wc", "transform", "kmeans"}
        assert all(v > 0 for v in run["utilization"].values())

    def test_untraced_sweep_has_no_trace_fields(self):
        record = bench_wallclock(
            scale=0.002, backends=("sequential",), repeats=1, kmeans_iters=1
        )
        assert "utilization" not in record["runs"][0]


class TestBestOf:
    def test_phases_and_result_come_from_the_same_best_run(self):
        """The min-time filter must not mix repeats: the recorded phases
        and output have to belong to the fastest run, not the last one."""
        fast = SimpleNamespace(phase_seconds={"input+wc": 1.0})
        slow = SimpleNamespace(phase_seconds={"input+wc": 999.0})
        results = iter([fast, slow])

        def run_once():
            result = next(results)
            if result is slow:
                time.sleep(0.05)
            return result

        total, result, phases = _best_of(2, run_once, "cfg")
        assert result is fast
        assert phases == {"input+wc": 1.0}
        assert total < 0.05

    def test_pipeline_failure_wrapped_with_configuration(self):
        def boom():
            raise RuntimeError("disk on fire")

        with pytest.raises(BenchmarkError, match="cfg-x.*disk on fire"):
            _best_of(1, boom, "cfg-x")

    def test_benchmark_surfaces_pipeline_error_cleanly(self, monkeypatch):
        def exploding_pipeline(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(wallclock_module, "run_pipeline", exploding_pipeline)
        with pytest.raises(BenchmarkError, match="sequential.*kaboom"):
            bench_wallclock(scale=0.002, backends=("sequential",))


class TestBenchReadSweep:
    def test_record_structure_and_equivalence(self, tmp_path):
        record = bench_read_sweep(
            scale=0.002,
            read_workers=(1, 2),
            backend="sequential",
            workers=1,
            repeats=1,
            kmeans_iters=2,
            corpus_dir=str(tmp_path / "corpus"),
        )
        assert record["benchmark"] == "wallclock"
        assert record["mode"] == "read"
        assert record["config"]["backend"] == "sequential"
        assert record["n_docs"] > 0
        assert [run["read_workers"] for run in record["runs"]] == [1, 2]
        assert record["runs"][0]["speedup_vs_serial_input"] == 1.0
        for run in record["runs"]:
            assert run["output_identical"] is True
            assert "read" in run["phases"]
            assert run["read_s"] >= 0.0
            assert run["total_s"] > 0.0
        # The corpus directory was caller-provided, so it is kept.
        assert (tmp_path / "corpus").is_dir()


class TestBenchIpcSweep:
    def test_record_structure_and_counters(self):
        record = bench_ipc_sweep(
            scale=0.002, workers=(2,), repeats=1, kmeans_iters=2
        )
        assert record["benchmark"] == "wallclock"
        assert record["mode"] == "ipc"
        assert record["n_docs"] > 0
        assert record["config"]["shm_available"] == shm_available()

        runs = record["runs"]
        expected_modes = [False, True] if shm_available() else [False]
        assert [run["shm"] for run in runs] == expected_modes
        for run in runs:
            assert run["workers"] == 2
            assert run["total_s"] > 0
            assert run["output_identical"] is True
            assert run["kmeans_task_bytes_per_iter"] > 0
            ipc = run["ipc"]
            assert set(ipc) == {"phases", "total"}
            assert ipc["total"]["tasks"] > 0
            # IPC runs are span-traced: utilization/straggler summaries
            # ride along in every record.
            assert set(run["utilization"]) == {"input+wc", "transform",
                                               "kmeans"}
            for phase, value in run["utilization"].items():
                assert 0.0 < value <= 1.0 + 1e-9
                assert run["straggler_ratio"][phase] >= 1.0
                stats = run["trace"][phase]
                assert stats["n_tasks"] >= 1
                assert stats["busy_s"] <= (
                    stats["n_workers"] * stats["window_s"] + 1e-9
                )
            # Span payloads are billed separately from result bytes.
            assert ipc["total"]["span_pickle_bytes"] > 0

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm")
    def test_shm_run_moves_bytes_off_the_task_path(self):
        record = bench_ipc_sweep(
            scale=0.002, workers=(2,), repeats=1, kmeans_iters=2
        )
        by_mode = {run["shm"]: run for run in record["runs"]}
        pickled = by_mode[False]["kmeans_task_bytes_per_iter"]
        shm = by_mode[True]["kmeans_task_bytes_per_iter"]
        assert shm < pickled / 100
        assert by_mode[True]["ipc"]["total"]["segments"] > 0
        assert by_mode[False]["ipc"]["total"]["segments"] == 0


class TestBenchPlan:
    def test_record_structure_equivalence_and_fusion(self):
        from repro.bench.wallclock import bench_plan

        # Generous tolerance: this test guards structure and equivalence,
        # not timing — the 10% gate is exercised by the CI smoke where a
        # single flake does not fail the whole tier-1 suite.
        record = bench_plan(
            scale=0.002, repeats=1, kmeans_iters=2,
            process_workers=1, tolerance=5.0,
        )
        assert record["benchmark"] == "wallclock"
        assert record["mode"] == "plan"
        assert record["config"]["process_workers"] == 1
        assert "calibration" in record["config"]

        configs = [run["config"] for run in record["runs"]]
        assert configs[:3] == ["sequential", "processes-1", "planned"]
        for run in record["runs"]:
            assert run["output_identical"] is True
            assert run["ok"] is True

        planned = record["runs"][2]
        assert planned["planned"] is True
        assert set(planned["plan"]["phases"]) == {
            "input+wc", "transform", "kmeans"
        }
        assert planned["plan_seconds"] >= 0.0

        pvf = record["planned_vs_fixed"]
        assert pvf["within_tolerance"] is True
        assert pvf["best_fixed_config"] in ("sequential", "processes-1")
        assert pvf["planned_phase_floor_s"] > 0.0

        if shm_available():
            fusion = record["fusion"]
            assert fusion["ok"] is True
            # The fused transform keeps per-doc counts worker-resident:
            # its task pickles must be a sliver of the unfused bill.
            assert (
                fusion["fused_transform_task_bytes"]
                < fusion["unfused_transform_task_bytes"]
            )
            assert fusion["eliminated_bytes"] > 0
        else:
            assert record["fusion"] is None


class TestBenchCache:
    def test_record_structure_and_equivalence(self, tmp_path):
        record = bench_cache(
            scale=0.002, repeats=1, kmeans_iters=2,
            cache_dir=str(tmp_path / "cache"),
        )
        assert record["benchmark"] == "wallclock"
        assert record["mode"] == "cache"
        assert record["config"]["shard_docs"] > 0

        scenarios = [run["scenario"] for run in record["runs"]]
        assert scenarios == ["uncached", "cold", "warm", "incremental"]
        for run in record["runs"]:
            assert run["ok"] is True, run["scenario"]
            assert run["total_s"] > 0

        cold, warm, incremental = record["runs"][1:]
        assert cold["cache"]["misses"] == 3 and cold["cache"]["stored"] > 0
        assert warm["cache"]["hits"] == 3 and warm["cache"]["misses"] == 0
        # The modified corpus reuses untouched leading word-count shards.
        assert incremental["wc_shard_hits"] >= 0
        assert incremental["uncached_total_s"] > 0

        summary = record["cache_summary"]
        assert summary["warm_speedup_vs_uncached"] > 0
        assert summary["warm_bytes_served"] > 0
        assert summary["warm_seconds_saved"] >= 0
        assert summary["cold_store_overhead_s"] == (
            pytest.approx(cold["total_s"] - record["runs"][0]["total_s"])
        )

    def test_record_passes_the_validator(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "validate_bench", os.path.join(REPO, "tools", "validate_bench.py")
        )
        validate_bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(validate_bench)
        record = bench_cache(
            scale=0.002, repeats=1, kmeans_iters=2,
            cache_dir=str(tmp_path / "cache"),
        )
        assert validate_bench.validate([record]) == []


class TestBenchWallclockTool:
    def test_tiny_smoke_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_wallclock.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable,
                os.path.join(REPO, "tools", "bench_wallclock.py"),
                "--tiny",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        record = json.loads(out.read_text())
        assert record["benchmark"] == "wallclock"
        assert all(run["output_identical"] for run in record["runs"])
        backends = {run["backend"] for run in record["runs"]}
        assert backends == {"sequential", "threads", "processes"}
        for run in record["runs"]:
            assert {"backend", "workers", "phases", "total_s"} <= set(run)

    def test_read_mode_appends_to_legacy_record(self, tmp_path):
        out = tmp_path / "BENCH_wallclock.json"
        legacy = {"benchmark": "wallclock", "runs": []}
        out.write_text(json.dumps(legacy) + "\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable,
                os.path.join(REPO, "tools", "bench_wallclock.py"),
                "--mode",
                "read",
                "--tiny",
                "--append",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        records = json.loads(out.read_text())
        # A legacy single-record file is converted into a list in place.
        assert isinstance(records, list) and len(records) == 2
        assert records[0] == legacy
        read_record = records[1]
        assert read_record["benchmark"] == "wallclock"
        assert read_record["mode"] == "read"
        assert [run["read_workers"] for run in read_record["runs"]] == [1, 2]
        for run in read_record["runs"]:
            assert run["output_identical"] is True
            assert "read" in run["phases"]

    def test_ipc_mode_tiny_smoke(self, tmp_path):
        out = tmp_path / "BENCH_wallclock.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable,
                os.path.join(REPO, "tools", "bench_wallclock.py"),
                "--mode",
                "ipc",
                "--tiny",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        record = json.loads(out.read_text())
        assert record["benchmark"] == "wallclock"
        assert record["mode"] == "ipc"
        for run in record["runs"]:
            assert run["output_identical"] is True
            assert run["ipc"]["total"]["tasks"] > 0
            # The tool exits non-zero when these are missing; belt and
            # braces: the written record carries them too.
            assert "utilization" in run and "straggler_ratio" in run
            assert run["trace"]
        assert "util" in proc.stdout
