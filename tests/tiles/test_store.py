"""TileStore / TileReader: spill lifecycle, LRU budget, adopt path.

The store's contract mirrors the shm plane's: deterministic accounting
(``peak_pinned_bytes`` is the bounded-memory witness the oocore bench
asserts on), loud failures on damaged input, and no leaked spill
directories on any exit path — the repo-wide conftest guard watches
``$TMPDIR/repro_tiles_*`` around every one of these tests.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import TileError
from repro.tiles import SPILL_PREFIX, TileStore


def _tile_arrays(n_rows, n_cols=16, seed=0):
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 4, size=n_rows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    nnz = int(indptr[-1])
    indices = rng.integers(0, n_cols, size=nnz).astype(np.int64)
    data = rng.random(nnz)
    sq_norms = np.array(
        [float(data[indptr[i]:indptr[i + 1]] @ data[indptr[i]:indptr[i + 1]])
         for i in range(n_rows)]
    )
    return indptr, indices, data, sq_norms


def _fill(store, tiles=4, rows_per_tile=3, n_cols=16):
    row = 0
    for at in range(tiles):
        store.append(row, n_cols, *_tile_arrays(rows_per_tile, n_cols, seed=at))
        row += rows_per_tile
    return store.seal(n_cols)


class TestStoreLifecycle:
    def test_spill_dir_uses_prefix_and_close_removes_it(self):
        store = TileStore()
        root = store.root
        assert os.path.basename(root).startswith(SPILL_PREFIX)
        assert os.path.isdir(root)
        _fill(store)
        store.close()
        assert not os.path.exists(root)
        store.close()  # idempotent

    def test_gc_backstop_removes_unclosed_store(self):
        store = TileStore()
        _fill(store)
        root = store.root
        del store
        assert not os.path.exists(root)

    def test_append_enforces_contiguity(self):
        store = TileStore()
        try:
            with pytest.raises(TileError, match="start at row 0"):
                store.append(5, 16, *_tile_arrays(2))
            store.append(0, 16, *_tile_arrays(2))
            with pytest.raises(TileError, match="contiguous"):
                store.append(7, 16, *_tile_arrays(2))
        finally:
            store.close()

    def test_reset_drops_tiles_for_replay(self):
        store = TileStore()
        try:
            _fill(store, tiles=3)
            assert len(store.metas) == 3
            store.reset()
            assert store.metas == ()
            assert [n for n in os.listdir(store.root)
                    if n.endswith(".rt")] == []
            # A reset store accepts a fresh row-0 tile sequence.
            store.append(0, 16, *_tile_arrays(2))
        finally:
            store.close()


class TestManifest:
    def test_shape_totals_and_paths(self):
        store = TileStore()
        try:
            manifest = _fill(store, tiles=4, rows_per_tile=3)
            assert manifest.n_rows == 12
            assert manifest.nnz == sum(m.nnz for m in manifest.tiles)
            assert manifest.total_bytes == sum(m.nbytes for m in manifest.tiles)
            for meta in manifest.tiles:
                assert os.path.getsize(manifest.path(meta)) == meta.nbytes
        finally:
            store.close()

    def test_digest_tracks_content(self):
        store_a, store_b = TileStore(), TileStore()
        try:
            digest_a = _fill(store_a, tiles=2).digest()
            assert digest_a == _fill(store_b, tiles=2).digest()
            store_b.reset()
            store_b.append(0, 16, *_tile_arrays(3, seed=99))
            assert store_b.seal(16).digest() != digest_a
        finally:
            store_a.close()
            store_b.close()


class TestReaderBudget:
    def test_unbudgeted_reader_pins_everything(self):
        store = TileStore()
        try:
            manifest = _fill(store, tiles=4)
            reader = store.reader(manifest)
            for index in range(4):
                reader.tile(index)
            stats = reader.stats_dict()
            assert stats["pinned_bytes"] == manifest.total_bytes
            assert stats["evictions"] == 0
            assert stats["reads"] == 4
        finally:
            store.close()

    def test_budget_bounds_peak_pinned_and_evicts_lru(self):
        store = TileStore()
        try:
            manifest = _fill(store, tiles=6, rows_per_tile=4)
            per_tile = manifest.tiles[0].nbytes
            budget = int(per_tile * 2.5)  # room for two tiles, never three
            store.memory_budget = budget
            reader = store.reader(manifest)
            for _sweep in range(2):
                for index in range(6):
                    view = reader.tile(index)
                    assert view.header.row_start == manifest.tiles[index].row_start
            stats = reader.stats_dict()
            assert stats["peak_pinned_bytes"] <= budget
            assert stats["evictions"] > 0
            # Second sweep re-reads evicted tiles: more loads than tiles.
            assert stats["reads"] > 6
        finally:
            store.close()

    def test_pathological_budget_keeps_served_tile(self):
        # A budget smaller than one tile still serves every tile; the
        # tile being handed out is never evicted from under the caller.
        store = TileStore()
        try:
            manifest = _fill(store, tiles=3)
            store.memory_budget = 1
            reader = store.reader(manifest)
            for index in range(3):
                view = reader.tile(index)
                assert view.indptr is not None
            stats = reader.stats_dict()
            assert stats["peak_pinned_bytes"] <= manifest.tiles[0].nbytes * 2
            assert stats["pinned_bytes"] <= max(m.nbytes for m in manifest.tiles)
        finally:
            store.close()

    def test_lru_refresh_on_repeat_access(self):
        store = TileStore()
        try:
            manifest = _fill(store, tiles=3)
            per_tile = manifest.tiles[0].nbytes
            store.memory_budget = per_tile * 2
            reader = store.reader(manifest)
            reader.tile(0)
            reader.tile(1)
            reader.tile(0)  # refresh: tile 1 is now the LRU victim
            reader.tile(2)
            assert reader.reads == 3
            reader.tile(0)  # still pinned — no new load
            assert reader.reads == 3
            reader.tile(1)  # was evicted — reloads
            assert reader.reads == 4
        finally:
            store.close()

    def test_tile_index_for_row(self):
        store = TileStore()
        try:
            manifest = _fill(store, tiles=3, rows_per_tile=4)
            reader = store.reader(manifest)
            assert reader.tile_index_for_row(0) == 0
            assert reader.tile_index_for_row(3) == 0
            assert reader.tile_index_for_row(4) == 1
            assert reader.tile_index_for_row(11) == 2
            with pytest.raises(TileError, match="outside"):
                reader.tile_index_for_row(12)
        finally:
            store.close()

    def test_manifest_mismatch_detected(self):
        # A tile whose header disagrees with the manifest (swapped file,
        # stale directory) is rejected even without CRC verification.
        store = TileStore()
        try:
            manifest = _fill(store, tiles=2, rows_per_tile=3)
            paths = [manifest.path(m) for m in manifest.tiles]
            os.replace(paths[1], paths[1] + ".save")
            os.replace(paths[0], paths[1])
            reader = store.reader(manifest)
            with pytest.raises(TileError, match="does not match manifest"):
                reader.tile(1)
        finally:
            store.close()


class TestAdopt:
    def test_adopt_round_trips_tile_bytes(self):
        source, target = TileStore(), TileStore()
        try:
            manifest = _fill(source, tiles=3)
            for meta in manifest.tiles:
                adopted = target.adopt_tile(source.tile_bytes(meta))
                assert (adopted.row_start, adopted.n_rows, adopted.nnz,
                        adopted.checksum) == (
                    meta.row_start, meta.n_rows, meta.nnz, meta.checksum)
            assert target.seal(16).digest() == manifest.digest()
        finally:
            source.close()
            target.close()

    def test_adopt_rejects_corrupt_blob_without_partial_files(self):
        source, target = TileStore(), TileStore()
        try:
            manifest = _fill(source, tiles=1)
            blob = bytearray(source.tile_bytes(manifest.tiles[0]))
            blob[-1] ^= 0xFF
            with pytest.raises(TileError, match="checksum"):
                target.adopt_tile(bytes(blob))
            assert os.listdir(target.root) == []
            assert target.metas == ()
        finally:
            source.close()
            target.close()

    def test_adopt_enforces_contiguity(self):
        source, target = TileStore(), TileStore()
        try:
            manifest = _fill(source, tiles=2)
            with pytest.raises(TileError, match="start at row 0"):
                target.adopt_tile(source.tile_bytes(manifest.tiles[1]))
        finally:
            source.close()
            target.close()
