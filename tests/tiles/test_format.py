"""Binary tile format: byte-exact round trips and loud corruption failures.

A tile is the spill plane's unit of trust — everything above it (the
store, the reader, the cache's adopt path) assumes that ``open_tile``
either returns exactly the arrays ``write_tile`` was given or raises
:class:`~repro.errors.TileError`. These tests attack that boundary:
truncation, bit flips in the payload, header field damage, and version
skew must all be detected, never silently served.
"""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.errors import TileError
from repro.tiles.format import (
    HEADER,
    TILE_MAGIC,
    open_tile,
    read_header,
    tile_nbytes,
    write_tile,
)


def _sample_arrays(n_rows=5, n_cols=32, seed=3):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 6, size=n_rows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    nnz = int(indptr[-1])
    indices = rng.integers(0, n_cols, size=nnz).astype(np.int64)
    data = rng.random(nnz).astype(np.float64)
    sq_norms = np.empty(n_rows, dtype=np.float64)
    for i in range(n_rows):
        values = data[indptr[i]:indptr[i + 1]]
        sq_norms[i] = float(values @ values)
    return indptr, indices, data, sq_norms


def _write_sample(path, row_start=0, n_cols=32, **kwargs):
    indptr, indices, data, sq_norms = _sample_arrays(n_cols=n_cols, **kwargs)
    header = write_tile(path, row_start, n_cols, indptr, indices, data, sq_norms)
    return header, (indptr, indices, data, sq_norms)


class TestRoundTrip:
    def test_arrays_round_trip_byte_exact(self, tmp_path):
        path = str(tmp_path / "t.rt")
        header, (indptr, indices, data, sq_norms) = _write_sample(
            path, row_start=7
        )
        view = open_tile(path, verify=True)
        try:
            assert view.header.row_start == 7
            assert view.header.n_rows == len(indptr) - 1
            assert view.header.n_cols == 32
            assert view.header.nnz == len(indices)
            assert view.indptr.tobytes() == indptr.tobytes()
            assert view.indices.tobytes() == indices.tobytes()
            assert view.data.tobytes() == data.tobytes()
            assert view.sq_norms.tobytes() == sq_norms.tobytes()
        finally:
            view.close()

    def test_file_size_matches_tile_nbytes(self, tmp_path):
        path = str(tmp_path / "t.rt")
        header, _ = _write_sample(path)
        assert os.path.getsize(path) == tile_nbytes(header.n_rows, header.nnz)
        assert header.nbytes == os.path.getsize(path)

    def test_empty_rows_and_zero_nnz(self, tmp_path):
        # A tile of rows that are all empty still round-trips: nnz == 0,
        # every array present, sq_norms all zero.
        path = str(tmp_path / "empty.rt")
        n_rows = 3
        write_tile(
            path, 0, 10,
            np.zeros(n_rows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.zeros(n_rows, dtype=np.float64),
        )
        view = open_tile(path, verify=True)
        try:
            assert view.header.nnz == 0
            assert view.header.n_rows == n_rows
            assert list(view.indptr) == [0, 0, 0, 0]
            assert len(view.indices) == 0
            assert list(view.sq_norms) == [0.0, 0.0, 0.0]
        finally:
            view.close()

    def test_read_header_alone(self, tmp_path):
        path = str(tmp_path / "t.rt")
        written, _ = _write_sample(path, row_start=4)
        header = read_header(path)
        assert (header.row_start, header.n_rows, header.nnz, header.checksum) \
            == (written.row_start, written.n_rows, written.nnz, written.checksum)

    def test_views_are_zero_copy_mmap(self, tmp_path):
        path = str(tmp_path / "t.rt")
        _write_sample(path)
        view = open_tile(path)
        try:
            assert not view.data.flags.writeable
            assert not view.indices.flags.owndata
        finally:
            view.close()


class TestWriteValidation:
    def test_rejects_non_local_indptr(self, tmp_path):
        with pytest.raises(TileError, match="tile-local"):
            write_tile(
                str(tmp_path / "bad.rt"), 0, 4,
                np.array([3, 5], dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                np.zeros(2, dtype=np.float64),
                np.zeros(1, dtype=np.float64),
            )

    def test_rejects_inconsistent_lengths(self, tmp_path):
        with pytest.raises(TileError, match="inconsistent"):
            write_tile(
                str(tmp_path / "bad.rt"), 0, 4,
                np.array([0, 2], dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.float64),  # != nnz
                np.zeros(1, dtype=np.float64),
            )

    def test_failed_write_leaves_no_temp_files(self, tmp_path):
        try:
            write_tile(
                str(tmp_path / "bad.rt"), 0, 4,
                np.array([1, 2], dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                np.zeros(2, dtype=np.float64),
                np.zeros(1, dtype=np.float64),
            )
        except TileError:
            pass
        assert os.listdir(tmp_path) == []


class TestCorruptionDetection:
    def test_payload_bit_flip_fails_verify(self, tmp_path):
        path = str(tmp_path / "t.rt")
        header, _ = _write_sample(path)
        with open(path, "r+b") as handle:
            handle.seek(header.nbytes - 3)
            byte = handle.read(1)
            handle.seek(header.nbytes - 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(TileError, match="checksum mismatch"):
            open_tile(path, verify=True)
        # Unverified opens still map (the fast path trusts the manifest).
        view = open_tile(path, verify=False)
        view.close()

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "t.rt")
        header, _ = _write_sample(path)
        with open(path, "r+b") as handle:
            handle.truncate(header.nbytes - 8)
        with pytest.raises(TileError, match="size"):
            open_tile(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = str(tmp_path / "t.rt")
        with open(path, "wb") as handle:
            handle.write(b"RTIL\x01")
        with pytest.raises(TileError, match="truncated"):
            read_header(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "t.rt")
        _write_sample(path)
        with open(path, "r+b") as handle:
            handle.write(b"NOPE")
        with pytest.raises(TileError, match="magic"):
            open_tile(path)

    def test_future_version_rejected(self, tmp_path):
        path = str(tmp_path / "t.rt")
        _write_sample(path)
        with open(path, "r+b") as handle:
            handle.seek(len(TILE_MAGIC))
            handle.write(struct.pack("<H", 99))
        with pytest.raises(TileError, match="version"):
            open_tile(path)

    def test_negative_shape_rejected(self, tmp_path):
        path = str(tmp_path / "t.rt")
        _write_sample(path)
        # row_start is the first i64 after magic+version+codes.
        offset = len(TILE_MAGIC) + 2 + 4
        with open(path, "r+b") as handle:
            handle.seek(offset)
            handle.write(struct.pack("<q", -1))
        with pytest.raises(TileError, match="negative"):
            read_header(path)

    def test_missing_file_raises_tile_error(self, tmp_path):
        with pytest.raises(TileError, match="cannot"):
            open_tile(str(tmp_path / "absent.rt"))
        with pytest.raises(TileError, match="cannot"):
            read_header(str(tmp_path / "absent.rt"))

    def test_header_size_is_stable(self):
        # The 48-byte header is an on-disk contract; changing it requires
        # a TILE_VERSION bump, not a silent relayout.
        assert HEADER.size == 48
