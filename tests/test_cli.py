"""Tests for the command-line interface (operators as separate binaries)."""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.io import read_sparse_arff
from repro.obs import read_ledger
from repro.plan.calibration import CalibrationStore
from repro.text.synth import MIX_PROFILE, generate_corpus


@pytest.fixture()
def corpus_dir(tmp_path):
    out = str(tmp_path / "corpus")
    assert main(["generate", "--profile", "mix", "--scale", "0.002",
                 "--seed", "1", "--out", out]) == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x"])
        assert args.profile == "mix"
        assert args.scale == 0.01

    def test_backend_flags(self):
        args = build_parser().parse_args(
            ["pipeline", "--input", "x", "--backend", "processes",
             "--workers", "4"]
        )
        assert args.backend == "processes"
        assert args.workers == 4
        args = build_parser().parse_args(["tfidf", "--input", "x",
                                          "--output", "y"])
        assert args.backend == "sequential"

    def test_shm_flag(self):
        args = build_parser().parse_args(
            ["pipeline", "--input", "x", "--backend", "processes", "--shm"]
        )
        assert args.shm is True
        args = build_parser().parse_args(
            ["pipeline", "--input", "x", "--no-shm"]
        )
        assert args.shm is False
        args = build_parser().parse_args(["pipeline", "--input", "x"])
        assert args.shm is None  # auto-detect

    def test_invalid_workers_reports_clean_error(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir, "--backend",
                     "processes", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "workers" in err

    def test_read_flags(self):
        args = build_parser().parse_args(
            ["pipeline", "--input-dir", "x", "--read-workers", "4",
             "--prefetch", "16"]
        )
        assert args.input == "x"  # --input-dir is an alias for --input
        assert args.read_workers == 4
        assert args.prefetch == 16
        args = build_parser().parse_args(["tfidf", "--input", "x",
                                          "--output", "y"])
        assert args.read_workers == 1
        assert args.prefetch is None

    def test_invalid_read_workers_reports_clean_error(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir,
                     "--read-workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err


class TestGenerate:
    def test_writes_documents(self, corpus_dir):
        files = os.listdir(corpus_dir)
        assert len(files) == 47
        assert all(name.endswith(".txt") for name in files)

    def test_deterministic(self, tmp_path, corpus_dir):
        other = str(tmp_path / "other")
        main(["generate", "--profile", "mix", "--scale", "0.002",
              "--seed", "1", "--out", other])
        name = sorted(os.listdir(corpus_dir))[0]
        with open(os.path.join(corpus_dir, name)) as a, open(
            os.path.join(other, name)
        ) as b:
            assert a.read() == b.read()


class TestDiscretePipeline:
    def test_tfidf_then_kmeans(self, corpus_dir, tmp_path):
        scores = str(tmp_path / "scores.arff")
        clusters = str(tmp_path / "clusters.txt")
        assert main(["tfidf", "--input", corpus_dir, "--output", scores]) == 0
        relation = read_sparse_arff(open(scores).read())
        assert relation.rows.n_rows == 47

        assert main(["kmeans", "--input", scores, "--output", clusters,
                     "--clusters", "4"]) == 0
        lines = open(clusters).read().strip().splitlines()
        assert len(lines) == 47
        assignments = [int(line.split("\t")[1]) for line in lines]
        assert set(assignments) <= set(range(4))


class TestRealPipeline:
    @pytest.mark.parametrize("backend", ["sequential", "threads", "processes"])
    def test_pipeline_runs_on_each_backend(
        self, corpus_dir, tmp_path, backend, capsys
    ):
        clusters = str(tmp_path / f"clusters-{backend}.txt")
        assert main(["pipeline", "--input", corpus_dir, "--output", clusters,
                     "--backend", backend, "--workers", "2",
                     "--max-iters", "3"]) == 0
        lines = open(clusters).read().strip().splitlines()
        assert len(lines) == 47
        out = capsys.readouterr().out
        assert "input+wc" in out and "kmeans" in out

    def test_pipeline_trace_writes_valid_chrome_json(
        self, corpus_dir, tmp_path, capsys
    ):
        import json

        clusters = str(tmp_path / "clusters.txt")
        trace_path = str(tmp_path / "trace.json")
        # Acceptance spelling: singular "process" must be accepted.
        assert main(["pipeline", "--input", corpus_dir, "--output", clusters,
                     "--backend", "process", "--workers", "2",
                     "--read-workers", "2", "--max-iters", "3",
                     "--trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "utilization:" in out
        doc = json.loads(open(trace_path).read())
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert xs, "trace must contain complete span events"
        for event in xs:
            assert event["ts"] >= 0 and event["dur"] >= 0
        # At least one span per pipeline phase, with per-worker lanes.
        assert {e["cat"] for e in xs} == {"read", "input+wc", "transform",
                                          "kmeans"}
        assert len({e["tid"] for e in xs}) >= 2

    def test_pipeline_output_identical_with_and_without_trace(
        self, corpus_dir, tmp_path
    ):
        outputs = {}
        for label, extra in (("plain", []),
                             ("traced", ["--trace",
                                         str(tmp_path / "t.json")])):
            path = str(tmp_path / f"{label}.txt")
            assert main(["pipeline", "--input", corpus_dir, "--output", path,
                         "--backend", "processes", "--workers", "2",
                         "--max-iters", "3"] + extra) == 0
            outputs[label] = open(path).read()
        assert outputs["plain"] == outputs["traced"]

    def test_pipeline_backends_agree(self, corpus_dir, tmp_path):
        outputs = {}
        for backend in ("sequential", "processes"):
            path = str(tmp_path / f"{backend}.txt")
            assert main(["pipeline", "--input", corpus_dir, "--output", path,
                         "--backend", backend, "--workers", "2",
                         "--max-iters", "3"]) == 0
            outputs[backend] = open(path).read()
        assert outputs["sequential"] == outputs["processes"]

    def test_pipeline_shm_modes_agree_and_report_ipc(
        self, corpus_dir, tmp_path, capsys
    ):
        from repro.exec.shm import shm_available

        outputs = {}
        ipc_lines = {}
        for flag in ("--no-shm",) + (("--shm",) if shm_available() else ()):
            path = str(tmp_path / f"shm{flag}.txt")
            assert main(["pipeline", "--input", corpus_dir, "--output", path,
                         "--backend", "processes", "--workers", "2",
                         "--max-iters", "3", flag]) == 0
            outputs[flag] = open(path).read()
            out = capsys.readouterr().out
            assert "IPC:" in out
            ipc_lines[flag] = next(
                line for line in out.splitlines() if line.startswith("IPC:")
            )
        if shm_available():
            assert outputs["--no-shm"] == outputs["--shm"]
            assert "0 shared segment(s)" in ipc_lines["--no-shm"]
            assert "0 shared segment(s)" not in ipc_lines["--shm"]

    def test_pipeline_parallel_read_matches_serial(self, corpus_dir, tmp_path):
        outputs = {}
        for n_read in ("1", "4"):
            path = str(tmp_path / f"read-{n_read}.txt")
            assert main(["pipeline", "--input-dir", corpus_dir,
                         "--output", path, "--read-workers", n_read,
                         "--max-iters", "3"]) == 0
            outputs[n_read] = open(path).read()
        assert outputs["1"] == outputs["4"]

    def test_pipeline_reports_read_phase(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir, "--read-workers", "2",
                     "--max-iters", "2"]) == 0
        out = capsys.readouterr().out
        assert "read:" in out
        assert "2 read worker(s)" in out

    def test_tfidf_parallel_read_matches_serial(self, corpus_dir, tmp_path):
        docs = {}
        for n_read in ("1", "3"):
            path = str(tmp_path / f"scores-{n_read}.arff")
            assert main(["tfidf", "--input-dir", corpus_dir, "--output", path,
                         "--read-workers", n_read]) == 0
            docs[n_read] = open(path).read()
        assert docs["1"] == docs["3"]

    def test_pipeline_writes_arff(self, corpus_dir, tmp_path):
        arff = str(tmp_path / "scores.arff")
        assert main(["pipeline", "--input", corpus_dir, "--arff", arff,
                     "--max-iters", "2"]) == 0
        relation = read_sparse_arff(open(arff).read())
        assert relation.rows.n_rows == 47

    def test_pipeline_empty_dir_fails(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        assert main(["pipeline", "--input", empty]) == 1
        assert "no documents" in capsys.readouterr().err

    def test_tfidf_min_df_shrinks_vocabulary(self, corpus_dir, tmp_path):
        full = str(tmp_path / "full.arff")
        pruned = str(tmp_path / "pruned.arff")
        main(["tfidf", "--input", corpus_dir, "--output", full])
        main(["tfidf", "--input", corpus_dir, "--output", pruned,
              "--min-df", "3"])
        full_attrs = read_sparse_arff(open(full).read()).attributes
        pruned_attrs = read_sparse_arff(open(pruned).read()).attributes
        assert len(pruned_attrs) < len(full_attrs)

    def test_tfidf_empty_dir_fails(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        assert main(["tfidf", "--input", empty, "--output",
                     str(tmp_path / "x.arff")]) == 1
        assert "no documents" in capsys.readouterr().err

    def test_kmeans_plusplus_init(self, corpus_dir, tmp_path):
        scores = str(tmp_path / "scores.arff")
        clusters = str(tmp_path / "clusters.txt")
        main(["tfidf", "--input", corpus_dir, "--output", scores])
        assert main(["kmeans", "--input", scores, "--output", clusters,
                     "--clusters", "4", "--init", "kmeans++"]) == 0


class TestWorkflowAndPlan:
    def test_workflow_reports_phases(self, corpus_dir, capsys):
        assert main(["workflow", "--input", corpus_dir, "--mode", "discrete",
                     "--threads", "8", "--max-iters", "3"]) == 0
        out = capsys.readouterr().out
        assert "input+wc" in out
        assert "tfidf-output" in out
        assert "total" in out
        # The output file lands inside the corpus storage.
        assert os.path.exists(os.path.join(corpus_dir, "clusters.txt"))

    def test_merged_workflow_has_no_materialization(self, corpus_dir, capsys):
        main(["workflow", "--input", corpus_dir, "--mode", "merged",
              "--max-iters", "3"])
        out = capsys.readouterr().out
        assert "tfidf-output" not in out

    def test_plan_prints_ranking(self, corpus_dir, capsys):
        assert main(["plan", "--input", corpus_dir, "--pilot-docs", "24"]) == 0
        out = capsys.readouterr().out
        assert "#1" in out
        assert "merged" in out


class TestAnalyze:
    def test_analyze_reports_statistics(self, corpus_dir, capsys):
        assert main(["analyze", "--input", corpus_dir, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "documents:" in out
        assert "Heaps fit:" in out
        assert "top-5 term frequencies" in out

    def test_analyze_empty_dir(self, tmp_path, capsys):
        import os

        empty = str(tmp_path / "void")
        os.makedirs(empty)
        assert main(["analyze", "--input", empty]) == 1
        assert "no documents" in capsys.readouterr().err


class TestPlannedPipeline:
    """--plan auto: the measured-cost planner drives the real pipeline."""

    def test_plan_flag_defaults(self):
        args = build_parser().parse_args(["pipeline", "--input", "x"])
        assert args.plan == "fixed"
        assert args.calibration is None
        assert args.explain_plan is False
        assert args.dict_kind is None  # planner may choose when unpinned

    def test_auto_plan_runs_and_persists_calibration(
        self, corpus_dir, tmp_path, capsys
    ):
        calib = str(tmp_path / "calib.json")
        clusters = str(tmp_path / "clusters.txt")
        assert main(["pipeline", "--input", corpus_dir, "--output", clusters,
                     "--plan", "auto", "--calibration", calib,
                     "--explain-plan", "--max-iters", "2"]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "planned in" in out
        assert "Plan for" in out          # --explain-plan narrative
        assert "rejected:" in out
        assert os.path.exists(calib)      # probe persisted for next run

        # Second invocation loads the store instead of re-probing.
        assert main(["pipeline", "--input", corpus_dir, "--output", clusters,
                     "--plan", "auto", "--calibration", calib,
                     "--max-iters", "2"]) == 0

    def test_auto_plan_output_matches_fixed_run(self, corpus_dir, tmp_path):
        fixed = str(tmp_path / "fixed.txt")
        planned = str(tmp_path / "planned.txt")
        assert main(["pipeline", "--input", corpus_dir, "--output", fixed,
                     "--backend", "sequential", "--max-iters", "2"]) == 0
        assert main(["pipeline", "--input", corpus_dir, "--output", planned,
                     "--plan", "auto", "--max-iters", "2"]) == 0
        assert open(planned).read() == open(fixed).read()

    def test_auto_plan_rejects_resilience_flags(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir,
                     "--plan", "auto", "--retries", "2"]) == 2
        err = capsys.readouterr().err
        assert "--plan fixed" in err

    def test_auto_plan_conflict_names_every_offending_flag(
        self, corpus_dir, capsys
    ):
        # Fail fast at argument validation — before any corpus read —
        # naming each conflicting flag, not just a generic policy error.
        assert main(["pipeline", "--input", corpus_dir, "--plan", "auto",
                     "--retries", "2", "--task-timeout", "5",
                     "--on-poison", "quarantine", "--degrade"]) == 2
        err = capsys.readouterr().err
        for flag in ("--retries", "--task-timeout", "--on-poison",
                     "--degrade", "--plan fixed"):
            assert flag in err

    def test_auto_plan_conflict_precedes_input_validation(
        self, tmp_path, capsys
    ):
        # The conflict is caught even when the input directory is bogus:
        # argument validation runs before the stream is opened.
        missing = str(tmp_path / "nonexistent")
        assert main(["pipeline", "--input", missing,
                     "--plan", "auto", "--degrade"]) == 2
        assert "--degrade" in capsys.readouterr().err

    def test_plan_fixed_still_accepts_resilience_flags(self, corpus_dir):
        assert main(["pipeline", "--input", corpus_dir, "--retries", "1",
                     "--max-iters", "2"]) == 0


class TestCachedPipeline:
    """--cache: phase results served from disk, bit-identically."""

    def test_cache_flag_defaults(self):
        args = build_parser().parse_args(["pipeline", "--input", "x"])
        assert args.cache is None
        assert args.cache_max_mb is None

    def test_warm_run_serves_and_reports(self, corpus_dir, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        cold_out = str(tmp_path / "cold.txt")
        warm_out = str(tmp_path / "warm.txt")
        assert main(["pipeline", "--input", corpus_dir, "--cache", cache,
                     "--output", cold_out, "--max-iters", "2"]) == 0
        cold = capsys.readouterr().out
        assert "cache: 0 hit(s), 3 miss(es)" in cold
        assert main(["pipeline", "--input", corpus_dir, "--cache", cache,
                     "--output", warm_out, "--max-iters", "2"]) == 0
        warm = capsys.readouterr().out
        assert "cache: 3 hit(s), 0 miss(es)" in warm
        assert "served" in warm and "saved" in warm
        assert open(warm_out).read() == open(cold_out).read()

    def test_cache_with_auto_plan_pins_cached_phases(
        self, corpus_dir, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        calib = str(tmp_path / "calib.json")
        for _ in range(2):
            assert main(["pipeline", "--input", corpus_dir, "--cache", cache,
                         "--plan", "auto", "--calibration", calib,
                         "--max-iters", "2"]) == 0
        warm = capsys.readouterr().out
        assert "cached" in warm
        assert "cache: 3 hit(s), 0 miss(es)" in warm

    def test_cache_max_mb_requires_cache(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir,
                     "--cache-max-mb", "10"]) == 2
        assert "--cache" in capsys.readouterr().err

    def test_no_cache_prints_no_cache_line(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir,
                     "--max-iters", "2"]) == 0
        assert "cache:" not in capsys.readouterr().out


class TestLedgerAndAnalytics:
    @pytest.fixture()
    def ledger_dir(self, corpus_dir, tmp_path):
        led = str(tmp_path / "ledger")
        for _ in range(2):
            assert main(["pipeline", "--input", corpus_dir,
                         "--max-iters", "2", "--ledger", led]) == 0
        return led

    def test_pipeline_reports_ledger_append(self, corpus_dir, tmp_path, capsys):
        led = str(tmp_path / "ledger")
        assert main(["pipeline", "--input", corpus_dir, "--max-iters", "2",
                     "--ledger", led]) == 0
        out = capsys.readouterr().out
        assert "ledger: 4 step record(s)" in out
        assert os.path.exists(os.path.join(led, "ledger.jsonl"))

    def test_no_ledger_prints_no_ledger_line(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir, "--max-iters", "2"]) == 0
        assert "ledger:" not in capsys.readouterr().out

    def test_heatmap_reports_steps(self, ledger_dir, capsys):
        assert main(["analytics", "heatmap", "--ledger", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert "workflow DNA over 2 run(s)" in out
        for step in ("read", "input+wc", "transform", "kmeans"):
            assert step in out

    def test_heatmap_json_output(self, ledger_dir, capsys):
        assert main(["analytics", "heatmap", "--ledger", ledger_dir,
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {s["step"] for s in doc} == {"read", "input+wc",
                                            "transform", "kmeans"}
        assert all(s["runs"] == 2 for s in doc)

    def test_heatmap_empty_ledger(self, tmp_path, capsys):
        assert main(["analytics", "heatmap", "--ledger",
                     str(tmp_path / "none")]) == 0
        assert "has no records yet" in capsys.readouterr().out

    def test_steps_filters_history(self, ledger_dir, capsys):
        assert main(["analytics", "steps", "--ledger", ledger_dir,
                     "--step", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert out.count("kmeans") == 2
        assert "transform" not in out

    def test_regressions_clean_history_exits_zero(self, ledger_dir, capsys):
        assert main(["analytics", "regressions", "--ledger", ledger_dir]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regressions_flag_slow_step_and_exit_one(self, ledger_dir, capsys):
        records, _ = read_ledger(ledger_dir)
        slow = dict(records[-1])
        slow["run_id"] = "slow-run"
        slow["run"] = dict(slow["run"], started=slow["run"]["started"] + 60)
        slow["ts"] = slow["ts"] + 60
        slow["duration_s"] = 30.0
        slow["step"] = "kmeans"
        with open(os.path.join(ledger_dir, "ledger.jsonl"), "a") as handle:
            handle.write(json.dumps(slow) + "\n")
        assert main(["analytics", "regressions", "--ledger", ledger_dir]) == 1
        out = capsys.readouterr().out
        assert "regression: kmeans" in out

    def test_export_formats(self, ledger_dir, tmp_path, capsys):
        prom = str(tmp_path / "metrics.prom")
        assert main(["analytics", "export", "--ledger", ledger_dir,
                     "--format", "prom", "--out", prom]) == 0
        assert "repro_step_runs_total" in open(prom).read()
        html = str(tmp_path / "dna.html")
        assert main(["analytics", "export", "--ledger", ledger_dir,
                     "--format", "html", "--out", html]) == 0
        assert open(html).read().startswith("<!doctype html>")
        capsys.readouterr()  # drop the "wrote ... export" lines
        assert main(["analytics", "export", "--ledger", ledger_dir,
                     "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"} == {0, 1}

    def test_recalibrate_updates_store(self, ledger_dir, tmp_path, capsys):
        store_path = str(tmp_path / "cal.json")
        corpus = generate_corpus(MIX_PROFILE, scale=0.002, seed=1)
        CalibrationStore.probe(corpus).save(store_path)
        before = CalibrationStore.load(store_path)
        assert main(["analytics", "recalibrate", "--ledger", ledger_dir,
                     "--calibration", store_path]) == 0
        out = capsys.readouterr().out
        assert "recalibrated from 2 run(s)" in out
        after = CalibrationStore.load(store_path)
        assert after.source == "observed"
        assert (after.phases["kmeans"].compute_ns_per_doc
                != before.phases["kmeans"].compute_ns_per_doc)


class TestServeCli:
    def test_serve_run_defaults(self):
        args = build_parser().parse_args(["serve", "run", "--state", "s"])
        assert args.backend == "threads"
        assert args.max_depth == 8
        assert args.orphan_policy == "retry"
        assert args.idle_exit is None

    def test_submit_run_status_round_trip(self, corpus_dir, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["serve", "submit", "--state", state,
                     "--input", corpus_dir, "--iters", "2",
                     "--job-id", "cli-1"]) == 0
        assert "submitted cli-1" in capsys.readouterr().out
        assert main(["serve", "run", "--state", state,
                     "--idle-exit", "0.3", "--drain-deadline", "60"]) == 0
        out = capsys.readouterr().out
        assert "1 done, 0 failed, 0 shed" in out
        assert main(["serve", "status", "--state", state, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"]["cli-1"]["state"] == "done"
        assert payload["jobs"]["cli-1"]["digest"]

    def test_status_unknown_job_fails(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        os.makedirs(state)
        assert main(["serve", "status", "--state", state,
                     "--job", "ghost"]) == 1
        assert "unknown job" in capsys.readouterr().err

    def test_drain_writes_marker(self, tmp_path, capsys):
        from repro.serve.transport import drain_requested

        state = str(tmp_path / "state")
        assert main(["serve", "drain", "--state", state]) == 0
        assert drain_requested(state)


class TestCacheCli:
    @pytest.fixture()
    def cache_dir(self, tmp_path):
        from repro.cache.store import CacheStore

        root = str(tmp_path / "cache")
        store = CacheStore(root)
        store.put("k1", {"x": 1})
        store.put("k2", {"y": 2})
        store.flush()
        return root

    def test_invalidate_one_key(self, cache_dir, capsys):
        from repro.cache.store import CacheStore

        assert main(["cache", "invalidate", "--cache", cache_dir,
                     "--key", "k1"]) == 0
        assert "invalidated 1 entry" in capsys.readouterr().out
        store = CacheStore(cache_dir)
        assert "k1" not in store and "k2" in store

    def test_invalidate_all(self, cache_dir, capsys):
        from repro.cache.store import CacheStore

        assert main(["cache", "invalidate", "--cache", cache_dir,
                     "--all"]) == 0
        assert "invalidated 2 entries" in capsys.readouterr().out
        assert len(CacheStore(cache_dir)) == 0

    def test_invalidate_expired(self, cache_dir, capsys):
        from repro.cache.store import CacheStore

        store = CacheStore(cache_dir)
        store._index["k1"]["stored_at"] -= 2000.0
        store.flush()
        assert main(["cache", "invalidate", "--cache", cache_dir,
                     "--expired", "1000"]) == 0
        assert "invalidated 1 expired entry" in capsys.readouterr().out
        reopened = CacheStore(cache_dir)
        assert "k1" not in reopened and "k2" in reopened

    def test_unknown_key_fails(self, cache_dir, capsys):
        assert main(["cache", "invalidate", "--cache", cache_dir,
                     "--key", "ghost"]) == 1
        assert "no cache entry" in capsys.readouterr().err

    def test_missing_cache_dir_fails(self, tmp_path, capsys):
        assert main(["cache", "invalidate",
                     "--cache", str(tmp_path / "nope"), "--all"]) == 1

    def test_pipeline_cache_ttl_requires_cache(self, corpus_dir, capsys):
        assert main(["pipeline", "--input", corpus_dir,
                     "--cache-ttl", "60"]) == 2
        assert "--cache-ttl requires --cache" in capsys.readouterr().err

    def test_pipeline_cache_ttl_expires_entries(
        self, corpus_dir, tmp_path, capsys
    ):
        from repro.cache.store import CacheStore

        cache = str(tmp_path / "cache")
        assert main(["pipeline", "--input", corpus_dir, "--cache", cache,
                     "--max-iters", "2"]) == 0
        store = CacheStore(cache)
        assert len(store) > 0
        for meta in store._index.values():
            meta["stored_at"] -= 2000.0
        store.flush()
        capsys.readouterr()
        # Aged entries are misses under a TTL'd rerun, which re-stores.
        assert main(["pipeline", "--input", corpus_dir, "--cache", cache,
                     "--cache-ttl", "1000", "--max-iters", "2"]) == 0
        capsys.readouterr()
        reopened = CacheStore(cache)
        assert all(
            meta["stored_at"] > 0 for meta in reopened._index.values()
        )
