"""Tests for corpus analysis: Heaps fitting and Zipf profiles."""

import pytest

from repro.errors import OperatorError
from repro.text import (
    MIX_PROFILE,
    Corpus,
    fit_heaps,
    generate_corpus,
    profile_from_corpus,
    vocabulary_growth,
    zipf_profile,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.004, seed=11)


class TestVocabularyGrowth:
    def test_samples_are_monotone(self, corpus):
        samples = vocabulary_growth(corpus)
        tokens = [n for n, _ in samples]
        vocab = [v for _, v in samples]
        assert tokens == sorted(tokens)
        assert vocab == sorted(vocab)

    def test_last_sample_covers_whole_corpus(self, corpus):
        samples = vocabulary_growth(corpus)
        stats = corpus.stats()
        assert samples[-1] == (stats.total_tokens, stats.distinct_words)

    def test_empty_corpus_raises(self):
        with pytest.raises(OperatorError):
            vocabulary_growth(Corpus("empty"))


class TestHeapsFit:
    def test_recovers_generator_parameters(self, corpus):
        """Fitting the generated corpus should recover the profile's beta."""
        fit = fit_heaps(corpus)
        assert fit.beta == pytest.approx(MIX_PROFILE.heaps_beta, abs=0.12)
        assert fit.r_squared > 0.98

    def test_prediction_matches_measurement(self, corpus):
        fit = fit_heaps(corpus)
        stats = corpus.stats()
        assert fit.predict(stats.total_tokens) == pytest.approx(
            stats.distinct_words, rel=0.15
        )

    def test_predict_zero_tokens(self, corpus):
        assert fit_heaps(corpus).predict(0) == 0.0

    def test_single_document_rejected(self):
        tiny = Corpus.from_texts("one", ["a a a"])
        with pytest.raises(OperatorError):
            fit_heaps(tiny)


class TestZipfProfile:
    def test_frequencies_descend(self, corpus):
        profile = zipf_profile(corpus, top=50)
        freqs = [f for _, f in profile]
        assert freqs == sorted(freqs, reverse=True)
        assert profile[0][0] == 1

    def test_heavy_head(self, corpus):
        """Zipf-like data: rank-1 term much more frequent than rank-50."""
        profile = zipf_profile(corpus, top=50)
        assert profile[0][1] > 5 * profile[-1][1]

    def test_empty_corpus_raises(self):
        with pytest.raises(OperatorError):
            zipf_profile(Corpus.from_texts("blank", ["..."]))


class TestProfileFromCorpus:
    def test_round_trip_statistics(self, corpus):
        """A profile fitted from a corpus regenerates similar statistics."""
        fitted = profile_from_corpus(corpus, name="refit")
        regenerated = generate_corpus(fitted, scale=1.0, seed=99)
        original = corpus.stats()
        redone = regenerated.stats()
        assert redone.documents == original.documents
        assert redone.mean_tokens_per_doc == pytest.approx(
            original.mean_tokens_per_doc, rel=0.15
        )
        assert redone.distinct_words == pytest.approx(
            original.distinct_words, rel=0.35
        )

    def test_profile_fields(self, corpus):
        fitted = profile_from_corpus(corpus)
        assert fitted.n_docs == len(corpus)
        assert 0.0 < fitted.heaps_beta < 1.0
        assert fitted.name.startswith("fitted-")
