"""Tests for normalization and tokenization."""

import pytest

from repro.text import (
    ENGLISH_STOPWORDS,
    Tokenizer,
    fold_text,
    is_stopword,
    is_word_char,
)


class TestFoldText:
    def test_lowercases(self):
        assert fold_text("Hello World") == "hello world"

    def test_punctuation_becomes_space(self):
        assert fold_text("a,b.c!d") == "a b c d"

    def test_apostrophes_removed(self):
        assert fold_text("don't") == "dont"

    def test_digits_kept(self):
        assert fold_text("year 2016") == "year 2016"

    def test_non_ascii_treated_as_separator(self):
        assert fold_text("café au lait").split() == ["caf", "au", "lait"]

    def test_empty_string(self):
        assert fold_text("") == ""

    def test_is_word_char(self):
        assert is_word_char("a")
        assert is_word_char("7")
        assert not is_word_char(".")
        assert not is_word_char("é")


class TestTokenizer:
    def test_basic_tokens(self):
        doc = Tokenizer().tokenize("The quick brown fox.")
        assert doc.tokens == ["the", "quick", "brown", "fox"]
        assert doc.n_tokens == 4

    def test_bytes_processed_counts_raw_text(self):
        text = "Some raw text!"
        assert Tokenizer().tokenize(text).bytes_processed == len(text)

    def test_stopwords_dropped_when_enabled(self):
        tokens = Tokenizer(drop_stopwords=True).tokens("the fox and the hound")
        assert tokens == ["fox", "hound"]

    def test_stopwords_kept_by_default(self):
        tokens = Tokenizer().tokens("the fox")
        assert "the" in tokens

    def test_min_length_filter(self):
        tokens = Tokenizer(min_length=3).tokens("a an the word")
        assert tokens == ["the", "word"]

    def test_max_length_filter(self):
        long_run = "x" * 100
        tokens = Tokenizer(max_length=64).tokens(f"ok {long_run} fine")
        assert tokens == ["ok", "fine"]

    def test_empty_text(self):
        doc = Tokenizer().tokenize("")
        assert doc.tokens == []
        assert doc.bytes_processed == 0

    def test_stopword_helper(self):
        assert is_stopword("the")
        assert not is_stopword("fox")
        assert "the" in ENGLISH_STOPWORDS
