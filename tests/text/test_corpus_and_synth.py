"""Tests for the corpus model and the synthetic generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, OperatorError
from repro.text import (
    MIX_PROFILE,
    NSF_ABSTRACTS_PROFILE,
    Corpus,
    CorpusProfile,
    Tokenizer,
    generate_corpus,
    generate_document_text,
    heaps_vocabulary,
    synth_word,
)


class TestCorpus:
    def test_add_assigns_sequential_ids(self):
        corpus = Corpus("test")
        a = corpus.add("a.txt", "alpha")
        b = corpus.add("b.txt", "beta")
        assert (a.doc_id, b.doc_id) == (0, 1)
        assert len(corpus) == 2

    def test_from_texts(self):
        corpus = Corpus.from_texts("t", ["one", "two words"])
        assert corpus[1].text == "two words"
        assert corpus.total_bytes == len("one") + len("two words")

    def test_iteration(self):
        corpus = Corpus.from_texts("t", ["a", "b"])
        assert [doc.text for doc in corpus] == ["a", "b"]

    def test_stats(self):
        corpus = Corpus.from_texts("t", ["the cat", "the dog runs"])
        stats = corpus.stats()
        assert stats.documents == 2
        assert stats.total_tokens == 5
        assert stats.distinct_words == 4  # the, cat, dog, runs
        assert stats.mean_tokens_per_doc == 2.5
        assert stats.mean_bytes_per_doc == pytest.approx(
            (len("the cat") + len("the dog runs")) / 2
        )

    def test_stats_of_empty_corpus_raises(self):
        with pytest.raises(OperatorError):
            Corpus("empty").stats()


class TestSynthWord:
    def test_low_ranks_are_common_words(self):
        assert synth_word(0) == "the"

    @given(st.sets(st.integers(0, 500_000), max_size=300))
    def test_injective(self, ranks):
        ranks = sorted(ranks)
        words = [synth_word(r) for r in ranks]
        assert len(set(words)) == len(words)

    def test_negative_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            synth_word(-1)

    def test_words_survive_tokenization(self):
        tokenizer = Tokenizer()
        for rank in (0, 10, 500, 100_000):
            word = synth_word(rank)
            assert tokenizer.tokens(word) == [word]

    def test_length_grows_with_rank(self):
        assert len(synth_word(1_000_000)) > len(synth_word(200))


class TestProfiles:
    def test_paper_profiles_match_table1_extrapolation(self):
        # The Heaps curve is calibrated exactly to Table 1 at full scale.
        assert MIX_PROFILE.expected_vocabulary() == MIX_PROFILE.paper_distinct_words
        assert (
            NSF_ABSTRACTS_PROFILE.expected_vocabulary()
            == NSF_ABSTRACTS_PROFILE.paper_distinct_words
        )

    def test_paper_doc_counts(self):
        assert MIX_PROFILE.n_docs == 23_432
        assert NSF_ABSTRACTS_PROFILE.n_docs == 101_483

    def test_nsf_is_larger_in_every_dimension(self):
        assert NSF_ABSTRACTS_PROFILE.n_docs > MIX_PROFILE.n_docs
        assert NSF_ABSTRACTS_PROFILE.total_tokens > MIX_PROFILE.total_tokens

    def test_scaled_profile(self):
        scaled = MIX_PROFILE.scaled(0.01)
        assert scaled.n_docs == round(MIX_PROFILE.n_docs * 0.01)
        assert scaled.mean_doc_tokens == MIX_PROFILE.mean_doc_tokens
        assert "0.01" in scaled.name

    def test_scale_one_keeps_name(self):
        assert MIX_PROFILE.scaled(1.0).name == MIX_PROFILE.name

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            MIX_PROFILE.scaled(0.0)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ConfigurationError):
            CorpusProfile("bad", n_docs=0, mean_doc_tokens=10, heaps_k=1, heaps_beta=0.5)
        with pytest.raises(ConfigurationError):
            CorpusProfile("bad", n_docs=1, mean_doc_tokens=10, heaps_k=1, heaps_beta=1.5)

    def test_heaps_vocabulary(self):
        assert heaps_vocabulary(10.0, 0.5, 100) == pytest.approx(100.0)
        assert heaps_vocabulary(10.0, 0.5, 0) == 0.0


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        a = generate_document_text(MIX_PROFILE, 7, seed=3)
        b = generate_document_text(MIX_PROFILE, 7, seed=3)
        assert a == b

    def test_different_docs_differ(self):
        assert generate_document_text(MIX_PROFILE, 1) != generate_document_text(
            MIX_PROFILE, 2
        )

    def test_different_seeds_differ(self):
        assert generate_document_text(MIX_PROFILE, 1, seed=0) != generate_document_text(
            MIX_PROFILE, 1, seed=1
        )

    def test_corpus_scale_controls_doc_count(self):
        corpus = generate_corpus(MIX_PROFILE, scale=0.002)
        assert len(corpus) == round(MIX_PROFILE.n_docs * 0.002)

    @settings(deadline=None)
    @given(st.integers(0, 3))
    def test_generated_docs_look_like_table1(self, seed):
        corpus = generate_corpus(MIX_PROFILE, scale=0.002, seed=seed)
        stats = corpus.stats()
        target_bytes_per_doc = MIX_PROFILE.paper_bytes / MIX_PROFILE.paper_documents
        assert stats.mean_bytes_per_doc == pytest.approx(
            target_bytes_per_doc, rel=0.25
        )

    def test_vocabulary_tracks_heaps_curve(self):
        corpus = generate_corpus(MIX_PROFILE, scale=0.005, seed=0)
        stats = corpus.stats()
        expected = MIX_PROFILE.expected_vocabulary(stats.total_tokens)
        assert stats.distinct_words == pytest.approx(expected, rel=0.2)

    def test_vocabulary_grows_sublinearly(self):
        small = generate_corpus(MIX_PROFILE, scale=0.002, seed=0).stats()
        large = generate_corpus(MIX_PROFILE, scale=0.008, seed=0).stats()
        token_ratio = large.total_tokens / small.total_tokens
        vocab_ratio = large.distinct_words / small.distinct_words
        assert 1.0 < vocab_ratio < token_ratio  # Heaps: sublinear growth
