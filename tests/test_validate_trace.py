"""Tests for the Chrome trace-event validator (tools/validate_trace.py)."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_spec = importlib.util.spec_from_file_location(
    "validate_trace", os.path.join(REPO, "tools", "validate_trace.py")
)
validate_trace = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_trace)


def _event(ph="X", tid=0, name="p#0", ts=0.0, dur=1.0, cat="p"):
    event = {"ph": ph, "pid": 0, "tid": tid, "name": name}
    if ph == "X":
        event.update({"ts": ts, "dur": dur, "cat": cat, "args": {}})
    return event


def _doc(events):
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class TestValidate:
    def test_accepts_a_well_formed_trace(self):
        doc = _doc([
            _event(ph="M", name="process_name"),
            _event(ts=0.0, dur=5.0),
            _event(name="p#1", ts=5.0, dur=5.0),
            _event(tid=1, name="q#0", ts=0.0, dur=3.0, cat="q"),
        ])
        assert validate_trace.validate(doc, ["p", "q"]) == []

    def test_rejects_wrong_top_level(self):
        assert validate_trace.validate([], [])
        assert validate_trace.validate({"events": []}, [])
        assert validate_trace.validate(_doc([]), [])

    def test_rejects_missing_keys_and_bad_ph(self):
        problems = validate_trace.validate(
            _doc([{"ph": "X", "pid": 0}, _event(ph="B")]), []
        )
        assert any("lacks required key" in p for p in problems)
        assert any("unexpected ph" in p for p in problems)

    def test_rejects_negative_timestamps(self):
        problems = validate_trace.validate(_doc([_event(ts=-1.0)]), [])
        assert any("negative" in p for p in problems)

    def test_rejects_overlapping_spans_on_one_lane(self):
        doc = _doc([
            _event(ts=0.0, dur=10.0),
            _event(name="p#1", ts=5.0, dur=10.0),
        ])
        problems = validate_trace.validate(doc, [])
        assert any("overlap" in p for p in problems)
        # Same intervals on different lanes are fine.
        doc = _doc([
            _event(ts=0.0, dur=10.0),
            _event(tid=1, name="p#1", ts=5.0, dur=10.0),
        ])
        assert validate_trace.validate(doc, []) == []

    def test_reports_missing_required_phase(self):
        problems = validate_trace.validate(_doc([_event()]), ["p", "kmeans"])
        assert any("'kmeans'" in p for p in problems)

    def test_trace_without_span_events_rejected(self):
        doc = _doc([_event(ph="M", name="process_name")])
        assert any("no complete" in p for p in validate_trace.validate(doc, []))


class TestMain:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(_doc([_event()])))
        assert validate_trace.main([str(path), "--phases", "p"]) == 0
        assert "valid trace-event JSON" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(_doc([_event(ts=-5.0)])))
        assert validate_trace.main([str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unreadable_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert validate_trace.main([str(path)]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_empty_file_refused_with_remedy(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text("")
        assert validate_trace.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "is empty" in err and "--trace" in err

    def test_truncated_json_refused_with_remedy(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text('{"traceEvents": [')
        assert validate_trace.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "not valid JSON" in err and str(path) in err

    def test_real_pipeline_trace_passes(self, tmp_path):
        from repro.core.pipeline import run_pipeline
        from repro.exec.process import make_backend
        from repro.text.synth import MIX_PROFILE, generate_corpus

        corpus = generate_corpus(MIX_PROFILE, scale=0.002, seed=1)
        with make_backend("process", 2) as backend:
            result = run_pipeline(corpus, backend=backend, trace=True)
        path = tmp_path / "run.json"
        result.trace.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert validate_trace.validate(
            doc, ["input+wc", "transform", "kmeans"]
        ) == []


@pytest.mark.parametrize("fraction,expected", [
    (0.5, 2.0), (1.0, 4.0), (0.0, 1.0),
])
def test_percentile_nearest_rank(fraction, expected):
    from repro.exec.spans import _percentile

    assert _percentile([1.0, 2.0, 3.0, 4.0], fraction) == expected
