"""Concurrent RunLedger writers: O_APPEND + fsync must never interleave.

The serve daemon points every executor (and every recovered daemon
generation) at one ledger directory, so the append discipline is now
load-bearing across *processes*, not just threads. This stress test
spawns real writer processes hammering one ledger and then requires a
byte-perfect file: every record parses, nothing interleaves mid-line,
and the per-run record counts all survive.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.obs.ledger import read_ledger

N_WRITERS = 4
RUNS_PER_WRITER = 6

_WRITER = r"""
import sys
from repro.obs.ledger import RunLedger, WallAnchor

root, writer_id = sys.argv[1], sys.argv[2]
ledger = RunLedger(root)
for index in range({runs}):
    ledger.record_failed_run(
        anchor=WallAnchor.capture(),
        phase_seconds={{"input+wc": 0.01, "transform": 0.02, "kmeans": 0.0}},
        failed_step="kmeans",
        error=f"stress w{{writer_id}} r{{index}}",
        backend="threads-2",
        n_docs=10,
        config={{"writer": writer_id, "index": index}},
    )
print("done", writer_id)
"""


def test_parallel_writer_processes_never_corrupt(tmp_path):
    root = str(tmp_path / "ledger")
    script = _WRITER.format(runs=RUNS_PER_WRITER)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, root, str(writer)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for writer in range(N_WRITERS)
    ]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert out.startswith("done")

    records, problems = read_ledger(root)
    assert problems == []
    # record_failed_run appends one record per completed phase plus the
    # failed step itself: 3 per run here.
    assert len(records) == N_WRITERS * RUNS_PER_WRITER * 3

    run_ids = {record["run_id"] for record in records}
    assert len(run_ids) == N_WRITERS * RUNS_PER_WRITER
    failed = [r for r in records if r["status"] == "failed"]
    assert len(failed) == N_WRITERS * RUNS_PER_WRITER
    # Every (writer, index) pair survived intact — no lost appends.
    seen = {
        (r["run"]["config"]["writer"], r["run"]["config"]["index"])
        for r in failed
    }
    assert len(seen) == N_WRITERS * RUNS_PER_WRITER

    # And the raw file itself is line-perfect: concurrent appends must
    # never tear mid-record.
    with open(f"{root}/ledger.jsonl", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    parsed = [json.loads(line) for line in lines if line.strip()]
    assert len(parsed) == len(records)


def test_thread_and_process_writers_mix(tmp_path):
    """One in-process writer interleaving with a subprocess writer."""
    import threading

    from repro.obs.ledger import RunLedger, WallAnchor

    root = str(tmp_path / "ledger")
    script = _WRITER.format(runs=RUNS_PER_WRITER)
    proc = subprocess.Popen(
        [sys.executable, "-c", script, root, "ext"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )

    ledger = RunLedger(root)

    def local_writer():
        for index in range(RUNS_PER_WRITER):
            ledger.record_failed_run(
                anchor=WallAnchor.capture(),
                phase_seconds={"input+wc": 0.01, "kmeans": 0.0},
                failed_step="kmeans",
                error=f"local r{index}",
                backend="threads-2",
                n_docs=10,
            )

    threads = [threading.Thread(target=local_writer) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    _, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err

    records, problems = read_ledger(root)
    assert problems == []
    # subprocess: 3 records/run; local threads: 2 records/run each.
    assert len(records) == RUNS_PER_WRITER * 3 + 2 * RUNS_PER_WRITER * 2
