"""Tests for the workflow-DNA analytics engine (repro.obs.analytics)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import PHASE_KMEANS, run_pipeline
from repro.exec.faultinject import FaultPlan, FaultSpec
from repro.exec.inline import SequentialBackend
from repro.obs import analytics, read_ledger
from repro.plan.calibration import CalibrationStore
from repro.text.synth import MIX_PROFILE, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=1)


def _rec(step, duration, run_id="r1", started=1000.0, status="ok", **extra):
    record = {
        "schema": 1,
        "run_id": run_id,
        "ts": started + duration,
        "step": step,
        "status": status,
        "duration_s": duration,
        "run": {"started": started, "kind": "pipeline", "backend": "threads-2",
                "n_docs": 10, "total_s": duration},
    }
    record.update(extra)
    return record


class TestHeatmap:
    def test_empty_history(self):
        assert analytics.heatmap([]) == {}

    def test_aggregates_durations_failures_and_telemetry(self):
        records = [
            _rec("transform", 0.1, run_id="r1",
                 ipc={"task_pickle_bytes": 600, "result_pickle_bytes": 400},
                 cache={"hits": 3, "misses": 1, "seconds_saved": 0.25},
                 span={"utilization": 0.5, "straggler_ratio": 2.0,
                       "queue_wait_s": 0.01}),
            _rec("transform", 0.3, run_id="r2", started=1010.0,
                 span={"utilization": 0.7, "straggler_ratio": 4.0,
                       "queue_wait_s": 0.03}),
            _rec("transform", 0.0, run_id="r3", started=1020.0,
                 status="failed", error="boom"),
        ]
        stats = analytics.heatmap(records)["transform"]
        assert stats.n_records == 3
        assert stats.n_failed == 1
        assert stats.failure_rate == pytest.approx(1 / 3)
        # Failed records contribute no duration sample.
        assert sorted(stats.durations) == [0.1, 0.3]
        assert stats.p50_s == 0.1
        assert stats.p95_s == 0.3
        assert stats.bytes_moved == 1000
        assert stats.cache_hit_rate == pytest.approx(0.75)
        assert stats.seconds_saved == pytest.approx(0.25)
        assert stats.mean_utilization == pytest.approx(0.6)
        assert stats.mean_straggler_ratio == pytest.approx(3.0)
        assert stats.queue_wait_s == pytest.approx(0.04)

    def test_untelemetered_steps_report_none_not_zero(self):
        stats = analytics.heatmap([_rec("kmeans", 0.1)])["kmeans"]
        assert stats.cache_hit_rate is None
        assert stats.mean_utilization is None
        assert stats.mean_straggler_ratio is None


class TestStepHistory:
    def test_filters_by_step(self):
        records = [_rec("input+wc", 0.1), _rec("kmeans", 0.2)]
        rows = analytics.step_history(records, step="kmeans")
        assert [r["step"] for r in rows] == ["kmeans"]
        assert rows[0]["backend"] == "threads-2"
        assert len(analytics.step_history(records)) == 2


class TestRegressions:
    def test_two_clean_runs_never_flag(self):
        records = [
            _rec("kmeans", 0.1, run_id="r1"),
            _rec("kmeans", 0.4, run_id="r2", started=1010.0),
        ]
        assert analytics.detect_regressions(records) == []

    def test_slow_latest_flagged_against_trailing_median(self):
        records = [
            _rec("kmeans", 0.10, run_id="r1"),
            _rec("kmeans", 0.12, run_id="r2", started=1010.0),
            _rec("input+wc", 0.20, run_id="r1"),
            _rec("input+wc", 0.21, run_id="r2", started=1010.0),
            _rec("input+wc", 0.20, run_id="r3", started=1020.0),
            _rec("kmeans", 0.50, run_id="r3", started=1020.0),
        ]
        flagged = analytics.detect_regressions(records)
        assert [f["step"] for f in flagged] == ["kmeans"]
        flag = flagged[0]
        assert flag["latest_s"] == pytest.approx(0.5)
        assert flag["baseline_p50_s"] == pytest.approx(0.10)
        assert flag["ratio"] == pytest.approx(5.0)
        assert flag["samples"] == 3

    def test_absolute_slack_ignores_micro_jitter(self):
        # 3x slower but only 2ms absolute: under the slack, not a flag.
        records = [
            _rec("kmeans", 0.001, run_id=f"r{i}", started=1000.0 + i)
            for i in range(3)
        ] + [_rec("kmeans", 0.003, run_id="r9", started=1010.0)]
        assert analytics.detect_regressions(records) == []

    def test_failed_runs_never_feed_the_baseline(self):
        records = [
            _rec("kmeans", 0.1, run_id="r1"),
            _rec("kmeans", 99.0, run_id="r2", started=1010.0, status="failed"),
            _rec("kmeans", 0.1, run_id="r3", started=1020.0),
            _rec("kmeans", 0.1, run_id="r4", started=1030.0),
        ]
        assert analytics.detect_regressions(records) == []

    def test_fault_injected_slow_step_flagged_exactly(self, tmp_path, corpus):
        """End to end: 3 clean ledgered runs, then one with an injected
        hang in kmeans — ``regressions`` must flag kmeans and only kmeans."""
        led = str(tmp_path / "led")

        def run(fault_plan=None):
            backend = SequentialBackend()
            if fault_plan is not None:
                backend.fault_plan = fault_plan
            try:
                run_pipeline(corpus, backend=backend, ledger=led)
            finally:
                backend.close()

        for _ in range(3):
            run()
        state = tmp_path / "faults"
        state.mkdir()
        run(FaultPlan(
            [FaultSpec(PHASE_KMEANS, 0, "hang", hang_s=0.5)], str(state)
        ))

        records, problems = read_ledger(led)
        assert problems == []
        flagged = analytics.detect_regressions(records)
        assert [f["step"] for f in flagged] == [PHASE_KMEANS]
        assert flagged[0]["latest_s"] > flagged[0]["threshold_s"]


class TestExports:
    RECORDS = [
        _rec("input+wc", 0.2, run_id="r1",
             ipc={"task_pickle_bytes": 100, "result_pickle_bytes": 50}),
        _rec("kmeans", 0.1, run_id="r1",
             span={"utilization": 0.8, "straggler_ratio": 1.5,
                   "queue_wait_s": 0.0}),
        _rec("input+wc", 0.25, run_id="r2", started=1010.0),
        _rec("kmeans", 0.1, run_id="r2", started=1010.0,
             cache={"hits": 1, "misses": 0, "seconds_saved": 0.1}),
    ]

    def test_json_export_shape(self):
        doc = analytics.export_json(self.RECORDS)
        assert doc["runs"] == 2
        assert doc["records"] == 4
        assert [s["step"] for s in doc["steps"]] == ["input+wc", "kmeans"]
        assert doc["regressions"] == []

    def test_prom_export_is_text_exposition(self):
        text = analytics.export_prom(self.RECORDS)
        assert '# TYPE repro_step_runs_total gauge' in text
        assert 'repro_step_runs_total{step="input+wc"} 2' in text
        assert 'repro_step_duration_seconds{step="kmeans",quantile="0.5"}' in text
        assert 'repro_step_bytes_moved_total{step="input+wc"} 150' in text
        assert 'repro_step_cache_hit_ratio{step="kmeans"} 1' in text
        assert 'repro_step_utilization_ratio{step="kmeans"} 0.8' in text
        assert text.endswith("\n")

    def test_prom_export_escapes_labels(self):
        text = analytics.export_prom([_rec('we"ird', 0.1)])
        assert 'step="we\\"ird"' in text

    def test_chrome_export_one_lane_per_run(self):
        doc = analytics.export_chrome(self.RECORDS)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4
        assert len({e["tid"] for e in spans}) == 2
        assert all(e["ts"] >= 0 for e in spans)
        lanes = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {lane["args"]["name"] for lane in lanes} == {"run r1", "run r2"}

    def test_html_export_is_self_contained(self):
        html = analytics.export_html(self.RECORDS)
        assert html.startswith("<!doctype html>")
        assert "Workflow DNA" in html and "2 run(s)" in html
        assert "input+wc" in html and "kmeans" in html
        assert "http" not in html  # no external assets

    def test_html_export_badges_regressions(self):
        records = [
            _rec("kmeans", 0.1, run_id=f"r{i}", started=1000.0 + i)
            for i in range(3)
        ] + [_rec("kmeans", 5.0, run_id="r9", started=1010.0)]
        assert "regression" in analytics.export_html(records)


class TestRecalibrate:
    def _store(self, corpus):
        return CalibrationStore.probe(corpus)

    def test_traced_history_changes_predictions(self, corpus):
        store = self._store(corpus)
        before = {
            phase: constants.compute_ns_per_doc
            for phase, constants in store.phases.items()
        }
        n = len(corpus)
        records = []
        for i, run_id in enumerate(("r1", "r2")):
            for step in ("input+wc", "transform", "kmeans"):
                records.append(_rec(
                    step, 1.0, run_id=run_id, started=1000.0 + 10 * i,
                    span_totals={"busy_s": 1.0, "n_items": n},
                ))
                records[-1]["run"]["n_docs"] = n
        summary = analytics.recalibrate(records, store)
        assert summary == {"runs_applied": 2, "runs_skipped": 0}
        assert store.source == "observed"
        for phase, old in before.items():
            assert store.phases[phase].compute_ns_per_doc != old

    def test_sequential_runs_contribute_wall_time_as_compute(self, corpus):
        store = self._store(corpus)
        record = _rec("kmeans", 2.0)
        record["run"]["backend"] = "sequential"
        record["run"]["n_docs"] = len(corpus)
        summary = analytics.recalibrate([record], store)
        assert summary["runs_applied"] == 1

    def test_untraced_parallel_and_failed_runs_skipped(self, corpus):
        store = self._store(corpus)
        untraced = _rec("kmeans", 2.0, run_id="r1")  # threads, no span_totals
        failed = _rec("kmeans", 2.0, run_id="r2", started=1010.0,
                      status="failed",
                      span_totals={"busy_s": 1.0, "n_items": 10})
        summary = analytics.recalibrate([untraced, failed], store)
        assert summary == {"runs_applied": 0, "runs_skipped": 2}
