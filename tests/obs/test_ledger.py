"""Tests for the persistent run ledger (repro.obs.ledger)."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.pipeline import run_pipeline
from repro.errors import ConfigurationError
from repro.obs.ledger import (
    LEDGER_FILE,
    LEDGER_SCHEMA,
    LedgerCorruptionWarning,
    RunLedger,
    WallAnchor,
    read_ledger,
)
from repro.ops.kmeans import KMeansOperator
from repro.text.synth import MIX_PROFILE, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=1)


def _synthetic(run_id="r1", started=1000.0, ts=1001.0, step="transform",
               schema=LEDGER_SCHEMA, **extra):
    record = {
        "schema": schema,
        "run_id": run_id,
        "ts": ts,
        "step": step,
        "status": "ok",
        "duration_s": 0.5,
        "run": {"started": started, "kind": "pipeline", "backend": "threads-2",
                "n_docs": 10, "total_s": 1.0},
        "host": {"platform": "test", "python": "3.11.0", "cpu_count": 1},
    }
    record.update(extra)
    return record


def _write_lines(root, lines):
    os.makedirs(root, exist_ok=True)
    with open(os.path.join(root, LEDGER_FILE), "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


class TestWallAnchor:
    def test_at_maps_offsets_onto_the_wall_axis(self):
        anchor = WallAnchor(wall=100.0, mono=5.0)
        assert anchor.at(2.5) == 102.5

    def test_now_never_runs_backwards_within_a_run(self):
        # Strict ordering is the ledger writer's job (_TS_STEP): at epoch
        # magnitude, back-to-back perf_counter deltas round away in doubles.
        anchor = WallAnchor.capture()
        stamps = [anchor.now() for _ in range(5)]
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))


class TestRunLedger:
    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            RunLedger("")

    def test_ensure_coerces_paths_and_instances(self, tmp_path):
        assert RunLedger.ensure(None) is None
        ledger = RunLedger.ensure(str(tmp_path / "led"))
        assert isinstance(ledger, RunLedger)
        assert RunLedger.ensure(ledger) is ledger
        with pytest.raises(ConfigurationError):
            RunLedger.ensure(42)

    def test_pipeline_run_is_ledgered_per_step(self, tmp_path, corpus):
        led = str(tmp_path / "led")
        result = run_pipeline(corpus, ledger=led)
        assert result.ledger is not None
        assert result.ledger["records"] == 3
        assert result.ledger["dir"] == led
        assert result.ledger["append_s"] > 0.0

        records, problems = read_ledger(led)
        assert problems == []
        assert [r["step"] for r in records] == ["input+wc", "transform", "kmeans"]
        for record in records:
            assert record["schema"] == LEDGER_SCHEMA
            assert record["status"] == "ok"
            assert record["run"]["n_docs"] == len(corpus)
            assert record["run"]["backend"] == result.backend_name
            assert record["duration_s"] == pytest.approx(
                result.phase_seconds[record["step"]]
            )
            assert record["host"]["cpu_count"] >= 1

    def test_two_sequential_runs_have_strictly_ordered_timestamps(
        self, tmp_path, corpus
    ):
        led = str(tmp_path / "led")
        run_pipeline(corpus, ledger=led)
        run_pipeline(corpus, ledger=led)
        records, problems = read_ledger(led)
        assert problems == []
        assert len({r["run_id"] for r in records}) == 2
        stamps = [r["ts"] for r in records]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

    def test_corrupt_trailing_line_skipped_loudly(self, tmp_path, corpus):
        led = str(tmp_path / "led")
        run_pipeline(corpus, ledger=led)
        with open(os.path.join(led, LEDGER_FILE), "a", encoding="utf-8") as h:
            h.write('{"schema": 1, "run_id": "torn-appe')
        with pytest.warns(LedgerCorruptionWarning, match="corrupt"):
            records, problems = read_ledger(led)
        assert len(records) == 3
        assert len(problems) == 1
        assert "truncated append" in problems[0]

    def test_missing_and_empty_directories_are_empty_history(self, tmp_path):
        assert read_ledger(str(tmp_path / "nope")) == ([], [])
        empty = tmp_path / "empty"
        empty.mkdir()
        assert read_ledger(str(empty)) == ([], [])

    def test_single_record_aggregates(self, tmp_path):
        led = str(tmp_path / "led")
        _write_lines(led, [json.dumps(_synthetic())])
        records, problems = read_ledger(led)
        assert problems == []
        assert len(records) == 1
        assert records[0]["step"] == "transform"

    def test_newer_schema_records_skipped_loudly(self, tmp_path):
        led = str(tmp_path / "led")
        _write_lines(led, [
            json.dumps(_synthetic(run_id="old", ts=1001.0)),
            json.dumps(_synthetic(run_id="new", ts=1002.0,
                                  schema=LEDGER_SCHEMA + 1)),
        ])
        with pytest.warns(LedgerCorruptionWarning, match="newer version"):
            records, problems = read_ledger(led)
        assert [r["run_id"] for r in records] == ["old"]
        assert len(problems) == 1

    def test_foreign_and_incomplete_lines_skipped_loudly(self, tmp_path):
        led = str(tmp_path / "led")
        incomplete = _synthetic()
        del incomplete["duration_s"]
        _write_lines(led, [
            '["not", "an", "object"]',
            '{"no_schema": true}',
            json.dumps(incomplete),
            json.dumps(_synthetic()),
        ])
        with pytest.warns(LedgerCorruptionWarning):
            records, problems = read_ledger(led)
        assert len(records) == 1
        assert len(problems) == 3
        assert any("non-object" in p for p in problems)
        assert any("'schema'" in p for p in problems)
        assert any("duration_s" in p for p in problems)

    def test_rotated_files_aggregate_together(self, tmp_path):
        led = str(tmp_path / "led")
        os.makedirs(led)
        with open(os.path.join(led, "archive-2025.jsonl"), "w") as h:
            h.write(json.dumps(_synthetic(run_id="a", started=500.0,
                                          ts=501.0)) + "\n")
        _write_lines(led, [json.dumps(_synthetic(run_id="b"))])
        records, problems = read_ledger(led)
        assert problems == []
        # Sorted by run start across files, not by filename.
        assert [r["run_id"] for r in records] == ["a", "b"]


class TestFailedRuns:
    def test_record_failed_run_shapes(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "led"))
        anchor = WallAnchor.capture()
        info = ledger.record_failed_run(
            anchor=anchor,
            phase_seconds={"input+wc": 0.2},
            failed_step="transform",
            error=RuntimeError("boom"),
            backend="threads-2",
            n_docs=10,
        )
        assert info["records"] == 2
        records, problems = read_ledger(ledger.root)
        assert problems == []
        by_step = {r["step"]: r for r in records}
        assert by_step["input+wc"]["status"] == "ok"
        failed = by_step["transform"]
        assert failed["status"] == "failed"
        assert failed["error"] == "boom"
        assert failed["duration_s"] >= 0.0
        stamps = [r["ts"] for r in records]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

    def test_pipeline_failure_is_ledgered(self, tmp_path, corpus):
        class BoomKMeans(KMeansOperator):
            def fit(self, matrix, backend=None):
                raise RuntimeError("boom")

        led = str(tmp_path / "led")
        with pytest.raises(RuntimeError, match="boom"):
            run_pipeline(corpus, kmeans=BoomKMeans(), ledger=led)
        records, problems = read_ledger(led)
        assert problems == []
        statuses = {r["step"]: r["status"] for r in records}
        assert statuses["input+wc"] == "ok"
        assert statuses["transform"] == "ok"
        assert statuses["kmeans"] == "failed"
        failed = next(r for r in records if r["status"] == "failed")
        assert "boom" in failed["error"]


class TestToRecord:
    def test_to_record_matches_the_result_and_serializes(self, corpus):
        result = run_pipeline(corpus)
        record = result.to_record()
        assert record["backend"] == result.backend_name
        assert record["phases"] == dict(result.phase_seconds)
        assert record["total_s"] == result.total_s
        assert record["downgrades"] == []
        assert record["quarantine"] is None
        json.dumps(record)  # every field must be JSON-serializable
