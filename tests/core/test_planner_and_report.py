"""Tests for the cost-based planner and the report formatters."""

import pytest

from repro.core import (
    WorkflowPlanner,
    format_breakdown_table,
    format_comparison_rows,
    format_speedup_table,
    series_to_csv,
)
from repro.errors import PlannerError
from repro.exec import paper_node
from repro.io import MemStorage


@pytest.fixture(scope="module")
def planner_storage(small_storage):
    return small_storage


def quick_planner(machine=None, **kwargs):
    defaults = dict(
        dict_kinds=("map", "unordered_map"),
        modes=("merged", "discrete"),
        worker_options=(1, 16),
        mixed_dicts=False,
    )
    defaults.update(kwargs)
    return WorkflowPlanner(machine or paper_node(16), **defaults)


class TestPlanner:
    def test_plan_ranks_candidates(self, small_storage):
        plan = quick_planner().plan(
            small_storage, "in/", pilot_docs=24, max_iters=3
        )
        assert plan.best is plan.candidates[0]
        times = [c.predicted_s for c in plan.candidates]
        assert times == sorted(times)
        # 2 modes x 2 uniform dict configs x 2 worker options
        assert len(plan.candidates) == 8

    def test_best_plan_is_fused_and_parallel(self, small_storage):
        """The paper's conclusion: on a parallel node, fuse and thread."""
        plan = quick_planner().plan(
            small_storage, "in/", pilot_docs=24, max_iters=3
        )
        assert plan.best.config.mode == "merged"
        assert plan.best.config.workers == 16

    def test_mixed_dict_configs_searched(self, small_storage):
        plan = quick_planner(mixed_dicts=True).plan(
            small_storage, "in/", pilot_docs=24, max_iters=3
        )
        combos = {
            (c.config.wc_dict_kind, c.config.transform_dict_kind)
            for c in plan.candidates
        }
        assert ("map", "unordered_map") in combos
        assert ("unordered_map", "map") in combos

    def test_memory_budget_filters(self, small_storage):
        unconstrained = quick_planner().plan(
            small_storage, "in/", pilot_docs=24, max_iters=3
        )
        worst = max(c.predicted_peak_bytes for c in unconstrained.candidates)
        best_memory = min(c.predicted_peak_bytes for c in unconstrained.candidates)
        constrained = quick_planner().plan(
            small_storage,
            "in/",
            pilot_docs=24,
            max_iters=3,
            memory_budget_bytes=(best_memory + worst) / 2,
        )
        assert all(
            c.predicted_peak_bytes <= (best_memory + worst) / 2
            for c in constrained.candidates
        )

    def test_impossible_memory_budget_raises(self, small_storage):
        with pytest.raises(PlannerError):
            quick_planner().plan(
                small_storage,
                "in/",
                pilot_docs=24,
                max_iters=3,
                memory_budget_bytes=1.0,
            )

    def test_empty_input_raises(self):
        with pytest.raises(PlannerError):
            quick_planner().plan(MemStorage(), "in/", pilot_docs=24)

    def test_pilot_must_cover_clusters(self, small_storage):
        with pytest.raises(PlannerError):
            quick_planner().plan(small_storage, "in/", pilot_docs=4, n_clusters=8)

    def test_extrapolation_scale(self, small_storage):
        plan = quick_planner().plan(
            small_storage, "in/", pilot_docs=24, max_iters=3
        )
        assert plan.pilot_docs == 24
        assert plan.full_docs == 47
        assert plan.scale_factor == pytest.approx(47 / 24)

    def test_explain_mentions_every_candidate(self, small_storage):
        plan = quick_planner().plan(
            small_storage, "in/", pilot_docs=24, max_iters=3
        )
        text = plan.explain()
        assert text.count("#") == len(plan.candidates)
        assert "merged" in text and "discrete" in text

    def test_predictions_have_breakdowns(self, small_storage):
        plan = quick_planner().plan(
            small_storage, "in/", pilot_docs=24, max_iters=3
        )
        for estimate in plan.candidates:
            assert "input+wc" in estimate.breakdown
            assert estimate.predicted_s > 0
            assert estimate.predicted_peak_bytes > 0


class TestReportFormatting:
    def test_speedup_table(self):
        table = format_speedup_table(
            {"Mix": {1: 10.0, 4: 4.0}, "NSF": {1: 20.0, 4: 5.0}},
            title="Figure 1",
        )
        assert "Figure 1" in table
        assert "Mix" in table and "NSF" in table
        assert "2.50" in table  # Mix @4T
        assert "4.00" in table  # NSF @4T

    def test_speedup_table_handles_missing_points(self):
        table = format_speedup_table({"A": {1: 4.0, 2: 2.0}, "B": {1: 8.0}})
        assert "2.00" in table

    def test_breakdown_table(self):
        table = format_breakdown_table(
            {
                "discrete/1T": {"input+wc": 50.0, "kmeans": 25.0},
                "merged/1T": {"input+wc": 50.0},
            },
            phases=["input+wc", "kmeans"],
        )
        assert "input+wc" in table
        assert "75.00" in table  # discrete total
        assert "50.00" in table

    def test_series_to_csv(self):
        csv = series_to_csv({"Mix": {1: 10.0, 4: 4.0}, "NSF": {1: 20.0}})
        lines = csv.splitlines()
        assert lines[0] == "threads,Mix,NSF"
        assert lines[1] == "1,10,20"
        assert lines[2] == "4,4,"

    def test_comparison_rows(self):
        text = format_comparison_rows(
            [("speedup @16T", "3.84x", "3.94x")], title="Fig 3"
        )
        assert "3.84x" in text and "3.94x" in text and "Fig 3" in text
