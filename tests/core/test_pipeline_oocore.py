"""run_pipeline under a memory budget: fixed and planned data planes.

The fixed path tiles unconditionally when a budget is given (the caller
asked for bounded memory; honoring it beats second-guessing). The
planned path hands the budget to the adaptive planner, which tiles only
when the predicted matrix footprint exceeds it. Both must report the
spill accounting on the result and keep outputs bit-identical.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import run_pipeline
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.plan import CalibrationStore
from repro.text import MIX_PROFILE, generate_corpus
from repro.tiles.matrix import TiledCsrMatrix

BUDGET = 50_000


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=7)


@pytest.fixture(scope="module")
def calibration(corpus):
    return CalibrationStore.probe(corpus)


def _run(docs, **kw):
    return run_pipeline(
        docs, tfidf=TfIdfOperator(), kmeans=KMeansOperator(max_iters=3), **kw
    )


def _fingerprint(result):
    return (
        [(list(r.indices), list(r.values))
         for r in result.tfidf.matrix.iter_rows()],
        result.kmeans.assignments,
        result.kmeans.centroids.tobytes(),
    )


class TestFixedPath:
    def test_budget_yields_tiled_matrix_and_accounting(self, corpus):
        result = _run(corpus, memory_budget=BUDGET)
        try:
            assert isinstance(result.tfidf.matrix, TiledCsrMatrix)
            stats = result.tiles
            assert stats is not None
            assert stats["tiles"] > 1
            assert stats["memory_budget"] == BUDGET
            assert 0 < stats["peak_pinned_bytes"] <= BUDGET
            assert stats["tile_bytes"] > BUDGET  # genuinely out of core
        finally:
            result.tfidf.matrix.close()

    def test_tiny_budget_still_completes_within_budget(self, corpus):
        # A budget smaller than any single tile is pathological but must
        # not deadlock: the reader always keeps the tile it is serving,
        # so peak pinned degrades to "one tile at a time" — never the
        # whole matrix.
        result = _run(corpus, memory_budget=2_000)
        try:
            stats = result.tiles
            assert stats["tiles"] >= len(corpus) // 2
            assert stats["peak_pinned_bytes"] < stats["tile_bytes"]
            assert stats["evictions"] > 0
        finally:
            result.tfidf.matrix.close()

    def test_close_removes_spill_dir(self, corpus, tmp_path):
        import os

        result = _run(corpus, memory_budget=BUDGET)
        spill_dir = result.tiles["spill_dir"]
        assert os.path.isdir(spill_dir)
        result.tfidf.matrix.close()
        assert not os.path.exists(spill_dir)


class TestPlannedPath:
    def test_budget_below_matrix_produces_tiled_plan(
        self, corpus, calibration
    ):
        untiled = _run(corpus, plan="auto", calibration=calibration)
        assert untiled.plan.tiled is False

        planned = _run(
            corpus, plan="auto", calibration=calibration, memory_budget=BUDGET
        )
        try:
            assert planned.plan.tiled is True
            assert planned.plan.memory_budget == BUDGET
            assert "+tiled" in planned.plan.phases["transform"].describe()
            assert planned.tiles is not None
            assert planned.tiles["peak_pinned_bytes"] <= BUDGET
            assert _fingerprint(planned) == _fingerprint(untiled)
        finally:
            planned.tfidf.matrix.close()

    def test_ample_budget_plans_untiled(self, corpus, calibration):
        result = _run(
            corpus, plan="auto", calibration=calibration,
            memory_budget=500_000_000,
        )
        assert result.plan.tiled is False
        assert result.tiles is None
