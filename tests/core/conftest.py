"""Shared fixtures for core-layer tests."""

import pytest

from repro.exec import SimScheduler, paper_node
from repro.io import MemStorage, store_corpus
from repro.text import MIX_PROFILE, generate_corpus


@pytest.fixture(scope="session")
def small_storage():
    """Storage holding a deterministic ~47-document corpus under 'in/'."""
    corpus = generate_corpus(MIX_PROFILE, scale=0.002, seed=3)
    storage = MemStorage()
    store_corpus(storage, corpus, prefix="in/")
    return storage


@pytest.fixture()
def scheduler():
    return SimScheduler(paper_node(16))
