"""Tests for the workflow engine and the paper's TF/IDF → K-means graph."""

import pytest

from repro.core import (
    ArffScoresMaterializer,
    ScoreMatrix,
    Workflow,
    WorkflowContext,
    WorkflowOp,
    build_tfidf_kmeans_workflow,
)
from repro.core.workflow import FILE, Edge
from repro.errors import WorkflowError
from repro.ops import KMeansResult


class _Const(WorkflowOp):
    """Test operator: emits a constant."""

    inputs = ()
    outputs = ("value",)

    def __init__(self, name, value):
        self.name = name
        self.value = value

    def execute(self, ctx, inputs):
        return {"value": self.value}


class _Add(WorkflowOp):
    inputs = ("left", "right")
    outputs = ("sum",)

    def __init__(self, name="add"):
        self.name = name

    def execute(self, ctx, inputs):
        return {"sum": inputs["left"] + inputs["right"]}


class TestGraphConstruction:
    def test_duplicate_op_rejected(self):
        wf = Workflow("t")
        wf.add(_Const("a", 1))
        with pytest.raises(WorkflowError):
            wf.add(_Const("a", 2))

    def test_connect_unknown_op_rejected(self):
        wf = Workflow("t")
        wf.add(_Const("a", 1))
        with pytest.raises(WorkflowError):
            wf.connect("a", "value", "missing", "left")

    def test_connect_unknown_port_rejected(self):
        wf = Workflow("t")
        wf.add(_Const("a", 1))
        wf.add(_Add("add"))
        with pytest.raises(WorkflowError):
            wf.connect("a", "nope", "add", "left")

    def test_file_edge_requires_materializer(self):
        with pytest.raises(WorkflowError):
            Edge("a", "v", "b", "w", materialize=FILE)

    def test_bad_materialize_value(self):
        with pytest.raises(WorkflowError):
            Edge("a", "v", "b", "w", materialize="pigeon")

    def test_cycle_detected(self):
        wf = Workflow("t")
        wf.add(_Add("x"))
        wf.add(_Add("y"))
        wf.connect("x", "sum", "y", "left")
        wf.connect("y", "sum", "x", "left")
        with pytest.raises(WorkflowError):
            wf.topological_order()

    def test_topological_order(self):
        wf = Workflow("t")
        wf.add(_Add("z"))
        wf.add(_Const("a", 1))
        wf.add(_Const("b", 2))
        wf.connect("a", "value", "z", "left")
        wf.connect("b", "value", "z", "right")
        order = wf.topological_order()
        assert order.index("z") > order.index("a")
        assert order.index("z") > order.index("b")

    def test_unbound_input_detected(self, scheduler, small_storage):
        wf = Workflow("t")
        wf.add(_Add("z"))
        with pytest.raises(WorkflowError):
            wf.run(scheduler, small_storage, inputs={}, workers=1)


class TestGenericExecution:
    def test_values_flow_through_memory_edges(self, scheduler, small_storage):
        wf = Workflow("t")
        wf.add(_Const("a", 4))
        wf.add(_Const("b", 5))
        wf.add(_Add("z"))
        wf.connect("a", "value", "z", "left")
        wf.connect("b", "value", "z", "right")
        result = wf.run(scheduler, small_storage, inputs={}, workers=2)
        assert result.value("z.sum") == 9

    def test_external_input_binding(self, scheduler, small_storage):
        wf = Workflow("t")
        wf.add(_Add("z"))
        result = wf.run(
            scheduler, small_storage, inputs={"z.left": 10, "z.right": 20}
        )
        assert result.value("z.sum") == 30

    def test_missing_output_reported(self, scheduler, small_storage):
        class Broken(_Const):
            def execute(self, ctx, inputs):
                return {}

        wf = Workflow("t")
        wf.add(Broken("a", 1))
        with pytest.raises(WorkflowError):
            wf.run(scheduler, small_storage, inputs={})

    def test_unknown_output_lookup(self, scheduler, small_storage):
        wf = Workflow("t")
        wf.add(_Const("a", 1))
        result = wf.run(scheduler, small_storage, inputs={})
        with pytest.raises(WorkflowError):
            result.value("a.bogus")


class TestPaperWorkflow:
    @pytest.mark.parametrize("mode", ["discrete", "merged"])
    def test_both_modes_produce_clustering(self, mode, scheduler, small_storage):
        wf = build_tfidf_kmeans_workflow(mode=mode, max_iters=5)
        result = wf.run(
            scheduler, small_storage, inputs={"tfidf.corpus_prefix": "in/"}, workers=8
        )
        clusters = result.value("kmeans.clusters")
        assert isinstance(clusters, KMeansResult)
        assert len(clusters.assignments) == 47

    def test_invalid_mode_rejected(self):
        with pytest.raises(WorkflowError):
            build_tfidf_kmeans_workflow(mode="both")

    def test_modes_agree_on_assignments(self, scheduler, small_storage):
        """Fusion must not change results — only timing."""
        results = {}
        for mode in ("discrete", "merged"):
            wf = build_tfidf_kmeans_workflow(mode=mode, max_iters=5)
            results[mode] = wf.run(
                scheduler,
                small_storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=8,
            )
        assert (
            results["discrete"].value("kmeans.clusters").assignments
            == results["merged"].value("kmeans.clusters").assignments
        )

    def test_discrete_has_materialization_phases(self, scheduler, small_storage):
        wf = build_tfidf_kmeans_workflow(mode="discrete", max_iters=3)
        result = wf.run(
            scheduler, small_storage, inputs={"tfidf.corpus_prefix": "in/"}, workers=4
        )
        breakdown = result.breakdown()
        assert "tfidf-output" in breakdown
        assert "kmeans-input" in breakdown
        assert result.file_edges == ["tfidf.scores->kmeans.scores"]

    def test_merged_skips_materialization(self, scheduler, small_storage):
        wf = build_tfidf_kmeans_workflow(mode="merged", max_iters=3)
        result = wf.run(
            scheduler, small_storage, inputs={"tfidf.corpus_prefix": "in/"}, workers=4
        )
        breakdown = result.breakdown()
        assert "tfidf-output" not in breakdown
        assert "kmeans-input" not in breakdown
        assert result.file_edges == []

    def test_discrete_slower_overall(self, scheduler, small_storage):
        """§3.3: dumping intermediates to disk has a high latency."""
        times = {}
        for mode in ("discrete", "merged"):
            wf = build_tfidf_kmeans_workflow(mode=mode, max_iters=3)
            times[mode] = wf.run(
                scheduler,
                small_storage,
                inputs={"tfidf.corpus_prefix": "in/"},
                workers=8,
            ).total_s
        assert times["discrete"] > times["merged"]

    def test_io_penalty_grows_with_threads(self, scheduler, small_storage):
        """§3.3: the relative cost of I/O rises with parallelism."""
        ratios = {}
        for workers in (1, 16):
            times = {}
            for mode in ("discrete", "merged"):
                wf = build_tfidf_kmeans_workflow(mode=mode, max_iters=3)
                times[mode] = wf.run(
                    scheduler,
                    small_storage,
                    inputs={"tfidf.corpus_prefix": "in/"},
                    workers=workers,
                ).total_s
            ratios[workers] = times["discrete"] / times["merged"]
        assert ratios[16] > ratios[1]

    def test_cluster_output_written(self, scheduler, small_storage):
        wf = build_tfidf_kmeans_workflow(mode="merged", max_iters=3)
        wf.run(
            scheduler, small_storage, inputs={"tfidf.corpus_prefix": "in/"}, workers=4
        )
        lines = small_storage.read_data("clusters.txt").strip().splitlines()
        assert len(lines) == 47
        assert all("\t" in line for line in lines)

    def test_peak_memory_tracked(self, scheduler, small_storage):
        wf = build_tfidf_kmeans_workflow(mode="merged", max_iters=3)
        result = wf.run(
            scheduler, small_storage, inputs={"tfidf.corpus_prefix": "in/"}, workers=4
        )
        assert result.peak_resident_bytes > 0


class TestMaterializerValidation:
    def test_wrong_payload_type_rejected(self, scheduler, small_storage):
        materializer = ArffScoresMaterializer()
        ctx = WorkflowContext(
            scheduler=scheduler, storage=small_storage, workers=1
        )
        with pytest.raises(WorkflowError):
            materializer.write(ctx, "not a score matrix", "x.arff")

    def test_roundtrip(self, scheduler, small_storage):
        from repro.sparse import CsrMatrix, SparseVector

        payload = ScoreMatrix(
            CsrMatrix.from_rows([SparseVector([0], [0.5])], n_cols=2),
            ["alpha", "beta"],
        )
        materializer = ArffScoresMaterializer()
        ctx = WorkflowContext(
            scheduler=scheduler, storage=small_storage, workers=1
        )
        materializer.write(ctx, payload, "tmp/test.arff")
        loaded = materializer.read(ctx, "tmp/test.arff")
        assert loaded.vocabulary == payload.vocabulary
        assert list(loaded.matrix.iter_rows()) == list(payload.matrix.iter_rows())
