"""Tests for the fusion rewriter and the analytic cost model."""

import pytest

from repro.core import (
    amdahl_speedup,
    build_tfidf_kmeans_workflow,
    estimate_edge_round_trip,
    fuse_workflow,
    roofline_cap,
)
from repro.core.cost_model import UNIT_SCALE, WorkloadScale
from repro.exec import paper_node

_GB = 1024**3


class TestFusion:
    def test_fuse_discrete_workflow(self):
        wf = build_tfidf_kmeans_workflow(mode="discrete")
        assert len(wf.file_edges()) == 1
        report = fuse_workflow(wf)
        assert report.n_fused == 1
        assert report.fused_edges == ("tfidf.scores->kmeans.scores",)
        assert wf.file_edges() == []

    def test_fuse_merged_workflow_is_noop(self):
        wf = build_tfidf_kmeans_workflow(mode="merged")
        report = fuse_workflow(wf)
        assert report.n_fused == 0

    def test_fused_workflow_runs_without_materialization(
        self, scheduler, small_storage
    ):
        wf = build_tfidf_kmeans_workflow(mode="discrete", max_iters=3)
        fuse_workflow(wf)
        result = wf.run(
            scheduler, small_storage, inputs={"tfidf.corpus_prefix": "in/"}, workers=4
        )
        assert "tfidf-output" not in result.breakdown()

    def test_foreign_edge_rejected(self):
        wf = build_tfidf_kmeans_workflow(mode="discrete")
        other = build_tfidf_kmeans_workflow(mode="discrete")
        with pytest.raises(ValueError):
            fuse_workflow(wf, edges=other.file_edges())

    def test_round_trip_estimate_is_positive_and_monotone(self):
        machine = paper_node()
        small = estimate_edge_round_trip(1e6, machine, 5.0, 10.0)
        large = estimate_edge_round_trip(1e9, machine, 5.0, 10.0)
        assert 0 < small < large

    def test_round_trip_includes_bandwidth_floor(self):
        machine = paper_node()
        estimate = estimate_edge_round_trip(machine.disk_write_bw, machine, 0.0, 0.0)
        # Writing one second's worth of bytes + reading it back.
        assert estimate >= 1.0


class TestAmdahlAndRoofline:
    def test_amdahl_limits(self):
        assert amdahl_speedup(0.0, 16) == pytest.approx(16.0)
        assert amdahl_speedup(1.0, 16) == pytest.approx(1.0)
        assert amdahl_speedup(0.5, 1000) == pytest.approx(2.0, rel=0.01)

    def test_amdahl_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(-0.1, 4)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)

    def test_roofline_cap_ratio(self):
        machine = paper_node()
        # A purely memory-bound phase caps at mem_bw / core_mem_bw.
        cap = roofline_cap(cpu_seconds=0.0, mem_bytes=8 * _GB, machine=machine)
        assert cap == pytest.approx(machine.mem_bw / machine.core_mem_bw)

    def test_roofline_cap_infinite_without_traffic(self):
        assert roofline_cap(1.0, 0.0, paper_node()) == float("inf")

    def test_cpu_bound_phase_caps_higher(self):
        machine = paper_node()
        light = roofline_cap(10.0, 1 * _GB, machine)
        heavy = roofline_cap(10.0, 100 * _GB, machine)
        assert light > heavy


class TestWorkloadScale:
    def test_unit_scale(self):
        assert UNIT_SCALE.doc_factor == 1.0
        assert UNIT_SCALE.vocab_factor == 1.0

    def test_for_corpus(self):
        scale = WorkloadScale.for_corpus(
            full_docs=1000, actual_docs=10, full_vocab=500, actual_vocab=100
        )
        assert scale.doc_factor == 100.0
        assert scale.vocab_factor == 5.0

    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            WorkloadScale(doc_factor=0)
        with pytest.raises(ValueError):
            WorkloadScale(vocab_factor=-1)
