"""Tests for the sparse K-means operator."""

import pytest

from repro.core.cost_model import WorkloadScale
from repro.errors import OperatorError
from repro.exec import SimScheduler, paper_node
from repro.ops import KMeansOperator, TfIdfOperator
from repro.sparse import CsrMatrix, SparseVector


def two_blob_matrix():
    """Twelve points in two obvious clusters over 4 dimensions."""
    rows = []
    for i in range(6):
        rows.append(SparseVector([0, 1], [1.0 + 0.01 * i, 1.0]))
    for i in range(6):
        rows.append(SparseVector([2, 3], [1.0, 1.0 + 0.01 * i]))
    return CsrMatrix.from_rows(rows, n_cols=4)


class TestClusteringQuality:
    def test_two_blobs_separate(self):
        result = KMeansOperator(n_clusters=2, max_iters=20, seed=0).fit(
            two_blob_matrix()
        )
        first = set(result.assignments[:6])
        second = set(result.assignments[6:])
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_converges_on_stable_data(self):
        result = KMeansOperator(n_clusters=2, max_iters=50).fit(two_blob_matrix())
        assert result.converged
        assert result.n_iters < 50

    def test_cluster_sizes_sum_to_docs(self, tiny_corpus):
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        result = KMeansOperator(n_clusters=3, max_iters=10).fit(matrix)
        assert sum(result.cluster_sizes()) == matrix.n_rows

    def test_inertia_non_negative(self, tiny_corpus):
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        result = KMeansOperator(n_clusters=3).fit(matrix)
        assert result.inertia >= 0.0

    def test_deterministic_given_seed(self, tiny_corpus):
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        a = KMeansOperator(n_clusters=3, seed=1).fit(matrix)
        b = KMeansOperator(n_clusters=3, seed=1).fit(matrix)
        assert a.assignments == b.assignments

    def test_too_few_documents_raises(self):
        matrix = CsrMatrix.from_rows([SparseVector([0], [1.0])], n_cols=1)
        with pytest.raises(OperatorError):
            KMeansOperator(n_clusters=8).fit(matrix)

    def test_invalid_parameters(self):
        with pytest.raises(OperatorError):
            KMeansOperator(n_clusters=0)
        with pytest.raises(OperatorError):
            KMeansOperator(max_iters=0)
        with pytest.raises(OperatorError):
            KMeansOperator(grain_docs=0)


class TestSimulatedExecution:
    def make_matrix(self, tiny_corpus):
        return TfIdfOperator().fit_transform(tiny_corpus).matrix

    def test_assignments_independent_of_workers(self, tiny_corpus):
        matrix = self.make_matrix(tiny_corpus)
        op = KMeansOperator(n_clusters=3, max_iters=10)
        scheduler = SimScheduler(paper_node(16))
        one = op.run_simulated(scheduler, matrix, workers=1)
        many = op.run_simulated(scheduler, matrix, workers=16)
        assert one.assignments == many.assignments
        assert one.n_iters == many.n_iters

    def test_virtual_time_decreases_with_workers_given_enough_chunks(
        self, tiny_corpus
    ):
        matrix = self.make_matrix(tiny_corpus)
        # Tiny grain: every document its own chunk, so parallelism helps.
        op = KMeansOperator(n_clusters=3, max_iters=5, grain_docs=1)
        scheduler = SimScheduler(paper_node(16))
        t1 = op.run_simulated(scheduler, matrix, workers=1).timeline.total_s
        t8 = op.run_simulated(scheduler, matrix, workers=8).timeline.total_s
        assert t8 < t1

    def test_fixed_grain_caps_speedup(self, tiny_corpus):
        """The Figure 1 mechanism: few chunks -> bounded speedup."""
        matrix = self.make_matrix(tiny_corpus)  # 10 documents
        # grain 5 docs -> 2 chunks -> speedup can never exceed ~2.
        op = KMeansOperator(n_clusters=3, max_iters=5, grain_docs=5)
        scheduler = SimScheduler(paper_node(16))
        t1 = op.run_simulated(scheduler, matrix, workers=1).timeline.total_s
        t16 = op.run_simulated(scheduler, matrix, workers=16).timeline.total_s
        assert t1 / t16 <= 2.5

    def test_reducer_chain_grows_with_workers(self, tiny_corpus):
        matrix = self.make_matrix(tiny_corpus)
        op = KMeansOperator(n_clusters=3, max_iters=3, grain_docs=1)
        scheduler = SimScheduler(paper_node(16))
        # Serial phases (merge chains) have workers == 1 and n_tasks == 1.
        result = op.run_simulated(scheduler, matrix, workers=8)
        chains = [
            p
            for p in result.timeline.phases
            if p.workers == 1 and p.n_tasks == 1
        ]
        assert chains  # reducer combines happened
        solo = op.run_simulated(scheduler, matrix, workers=1)
        solo_chains = [
            p for p in solo.timeline.phases if p.workers == 1 and p.n_tasks == 1
        ]
        assert not solo_chains  # a single view needs no combining

    def test_scale_multiplies_assignment_cost(self, tiny_corpus):
        matrix = self.make_matrix(tiny_corpus)
        scheduler = SimScheduler(paper_node(16))
        unit = KMeansOperator(n_clusters=3, max_iters=3).run_simulated(
            scheduler, matrix, workers=1
        )
        scaled = KMeansOperator(
            n_clusters=3,
            max_iters=3,
            scale=WorkloadScale(doc_factor=10, vocab_factor=1),
        ).run_simulated(scheduler, matrix, workers=1)
        assert scaled.assignments == unit.assignments
        assert scaled.timeline.total_s > 5 * unit.timeline.total_s

    def test_timeline_phases_named_kmeans(self, tiny_corpus):
        matrix = self.make_matrix(tiny_corpus)
        result = KMeansOperator(n_clusters=3, max_iters=2).run_simulated(
            SimScheduler(paper_node(4)), matrix, workers=4
        )
        assert set(result.timeline.breakdown()) == {"kmeans"}


class TestRecycling:
    def test_centroids_shape_and_dtype(self, tiny_corpus):
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        result = KMeansOperator(n_clusters=3).fit(matrix)
        assert result.centroids.shape == (3, matrix.n_cols)
        assert result.n_clusters == 3

    def test_empty_cluster_keeps_previous_centroid(self):
        # 3 identical points, 2 clusters: one cluster ends up empty but the
        # operator must not produce NaNs.
        rows = [SparseVector([0], [1.0]) for _ in range(3)]
        matrix = CsrMatrix.from_rows(rows, n_cols=2)
        result = KMeansOperator(n_clusters=2, max_iters=5).fit(matrix)
        assert not any(
            value != value for row in result.centroids for value in row
        )  # no NaN
