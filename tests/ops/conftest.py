"""Shared fixtures for operator tests: a small stored corpus."""

import pytest

from repro.exec import SimScheduler, paper_node
from repro.io import MemStorage, corpus_paths, store_corpus
from repro.text import MIX_PROFILE, Corpus, generate_corpus


@pytest.fixture(scope="session")
def small_corpus():
    """A deterministic ~47-document synthetic Mix sample."""
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=7)


@pytest.fixture()
def stored_corpus(small_corpus):
    """(storage, paths) for the small corpus."""
    storage = MemStorage()
    store_corpus(storage, small_corpus, prefix="in/")
    return storage, corpus_paths(storage, "in/")


@pytest.fixture()
def scheduler():
    return SimScheduler(paper_node(16))


@pytest.fixture(scope="session")
def tiny_texts():
    return [
        "the cat sat on the mat",
        "the dog chased the cat",
        "a bird sang in the tree",
        "dogs and cats are pets",
        "the tree grew near the house",
        "birds fly over the house",
        "cats chase birds sometimes",
        "the mat lay by the door",
        "a door opened into the house",
        "pets make a house a home",
    ]


@pytest.fixture(scope="session")
def tiny_corpus(tiny_texts):
    return Corpus.from_texts("tiny", tiny_texts)
