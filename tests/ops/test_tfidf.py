"""Tests for the TF/IDF operator."""

import math

import pytest

from repro.errors import OperatorError
from repro.io import read_sparse_arff
from repro.ops import TfIdfOperator
from repro.ops.tfidf import PHASE_TFIDF_OUTPUT, PHASE_TRANSFORM
from repro.ops.wordcount import PHASE_INPUT_WC


class TestFitTransform:
    def test_matrix_shape(self, tiny_corpus):
        result = TfIdfOperator(wc_dict_kind="map").fit_transform(tiny_corpus)
        assert result.matrix.n_rows == len(tiny_corpus)
        assert result.matrix.n_cols == len(result.vocabulary)
        assert len(result.idf) == len(result.vocabulary)

    def test_vocabulary_sorted(self, tiny_corpus):
        result = TfIdfOperator().fit_transform(tiny_corpus)
        assert result.vocabulary == sorted(result.vocabulary)

    def test_rows_are_l2_normalized(self, tiny_corpus):
        result = TfIdfOperator().fit_transform(tiny_corpus)
        for row in result.matrix.iter_rows():
            if row.nnz:
                assert row.norm() == pytest.approx(1.0)

    def test_idf_formula(self, tiny_corpus):
        result = TfIdfOperator().fit_transform(tiny_corpus)
        wc = result.wordcount
        n = wc.n_docs
        for term_id, term in enumerate(result.vocabulary):
            assert result.idf[term_id] == pytest.approx(
                math.log(n / wc.df.get(term))
            )

    def test_ubiquitous_term_scores_zero(self, tiny_corpus):
        """'the' appears in (almost) every tiny document: idf ~ 0."""
        result = TfIdfOperator().fit_transform(tiny_corpus)
        term_id = result.vocabulary.index("the")
        assert result.idf[term_id] < result.idf[result.vocabulary.index("bird")]

    def test_dict_kinds_agree_on_scores(self, tiny_corpus):
        tree = TfIdfOperator(wc_dict_kind="map").fit_transform(tiny_corpus)
        hashed = TfIdfOperator(wc_dict_kind="unordered_map").fit_transform(
            tiny_corpus
        )
        assert tree.vocabulary == hashed.vocabulary
        for a, b in zip(tree.matrix.iter_rows(), hashed.matrix.iter_rows()):
            assert a.indices == b.indices
            for x, y in zip(a.values, b.values):
                assert x == pytest.approx(y)

    def test_mixed_dict_kinds(self, tiny_corpus):
        mixed = TfIdfOperator(
            wc_dict_kind="map", transform_dict_kind="unordered_map"
        ).fit_transform(tiny_corpus)
        uniform = TfIdfOperator(wc_dict_kind="map").fit_transform(tiny_corpus)
        assert mixed.vocabulary == uniform.vocabulary
        assert list(mixed.matrix.iter_rows()) == list(uniform.matrix.iter_rows())


class TestSimulatedRun:
    def test_phases_present(self, stored_corpus, scheduler):
        storage, _ = stored_corpus
        result = TfIdfOperator().run_simulated(
            scheduler, storage, "in/", workers=8, output_path="out.arff"
        )
        breakdown = result.timeline.breakdown()
        assert set(breakdown) == {PHASE_INPUT_WC, PHASE_TRANSFORM, PHASE_TFIDF_OUTPUT}
        assert all(v > 0 for v in breakdown.values())

    def test_no_output_phase_when_fused(self, stored_corpus, scheduler):
        storage, _ = stored_corpus
        result = TfIdfOperator().run_simulated(scheduler, storage, "in/", workers=8)
        assert PHASE_TFIDF_OUTPUT not in result.timeline.breakdown()

    def test_output_phase_is_serial(self, stored_corpus, scheduler):
        storage, _ = stored_corpus
        result = TfIdfOperator().run_simulated(
            scheduler, storage, "in/", workers=16, output_path="out.arff"
        )
        output_phases = [
            p for p in result.timeline.phases if p.name == PHASE_TFIDF_OUTPUT
        ]
        assert all(p.workers == 1 for p in output_phases)

    def test_arff_roundtrip_matches_matrix(self, stored_corpus, scheduler):
        storage, _ = stored_corpus
        result = TfIdfOperator().run_simulated(
            scheduler, storage, "in/", workers=4, output_path="out.arff"
        )
        relation = read_sparse_arff(storage.read_data("out.arff"))
        assert relation.attributes == result.vocabulary
        assert relation.rows.n_rows == result.matrix.n_rows
        first_orig = result.matrix.row(0)
        first_read = relation.rows.row(0)
        assert first_read.indices == first_orig.indices
        for a, b in zip(first_read.values, first_orig.values):
            assert a == pytest.approx(b, rel=1e-4)

    def test_workers_do_not_change_result(self, stored_corpus, scheduler):
        storage, _ = stored_corpus
        one = TfIdfOperator().run_simulated(scheduler, storage, "in/", workers=1)
        many = TfIdfOperator().run_simulated(scheduler, storage, "in/", workers=16)
        assert one.vocabulary == many.vocabulary
        assert list(one.matrix.iter_rows()) == list(many.matrix.iter_rows())

    def test_missing_input_raises(self, scheduler):
        from repro.io import MemStorage

        with pytest.raises(OperatorError):
            TfIdfOperator().run_simulated(scheduler, MemStorage(), "nothing/")

    def test_simulated_matches_functional(self, stored_corpus, scheduler, small_corpus):
        storage, _ = stored_corpus
        simulated = TfIdfOperator().run_simulated(scheduler, storage, "in/")
        functional = TfIdfOperator().fit_transform(small_corpus)
        assert simulated.vocabulary == functional.vocabulary
        assert list(simulated.matrix.iter_rows()) == list(
            functional.matrix.iter_rows()
        )


class TestDataStructureEffects:
    def test_insert_heavy_wc_phase_favours_tree(self, stored_corpus, scheduler):
        """Paper §3.4: input+wc is faster with std::map at one thread."""
        storage, _ = stored_corpus
        tree = TfIdfOperator(wc_dict_kind="map").run_simulated(
            scheduler, storage, "in/", workers=1
        )
        hashed = TfIdfOperator(wc_dict_kind="unordered_map").run_simulated(
            scheduler, storage, "in/", workers=1
        )
        assert tree.timeline.phase_seconds(PHASE_INPUT_WC) < hashed.timeline.phase_seconds(
            PHASE_INPUT_WC
        )

    def test_lookup_heavy_transform_favours_hash_at_one_thread(
        self, stored_corpus, scheduler
    ):
        """Paper §3.4: the transform step is slower with a map on 1 thread."""
        storage, _ = stored_corpus
        tree = TfIdfOperator(wc_dict_kind="map").run_simulated(
            scheduler, storage, "in/", workers=1
        )
        hashed = TfIdfOperator(wc_dict_kind="unordered_map").run_simulated(
            scheduler, storage, "in/", workers=1
        )
        assert hashed.timeline.phase_seconds(
            PHASE_TRANSFORM
        ) < tree.timeline.phase_seconds(PHASE_TRANSFORM)

    def test_memory_contrast(self, stored_corpus, scheduler):
        storage, _ = stored_corpus
        tree = TfIdfOperator(wc_dict_kind="map").run_simulated(
            scheduler, storage, "in/"
        )
        hashed = TfIdfOperator(wc_dict_kind="unordered_map").run_simulated(
            scheduler, storage, "in/"
        )
        assert hashed.resident_bytes() > 10 * tree.resident_bytes()
