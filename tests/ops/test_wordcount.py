"""Tests for the word-count step."""

import pytest

from repro.core.cost_model import WorkloadScale
from repro.dicts import make_dict
from repro.exec import SimScheduler, TaskCost, paper_node
from repro.ops import WordCountStep
from repro.ops.wordcount import PHASE_INPUT_WC


class TestCountDocument:
    def test_counts_are_correct(self):
        step = WordCountStep(dict_kind="map")
        df = make_dict("map")
        cost = TaskCost()
        tf, n_tokens = step.count_document("the cat the dog", df, cost)
        assert n_tokens == 4
        assert tf.get("the") == 2
        assert tf.get("cat") == 1
        assert df.get("the") == 1  # document frequency counts documents

    def test_df_counts_documents_not_occurrences(self):
        step = WordCountStep(dict_kind="map")
        df = make_dict("map")
        cost = TaskCost()
        step.count_document("cat cat cat", df, cost)
        step.count_document("cat dog", df, cost)
        assert df.get("cat") == 2
        assert df.get("dog") == 1

    def test_cost_is_charged(self):
        step = WordCountStep(dict_kind="map")
        cost = TaskCost()
        step.count_document("some words here", make_dict("map"), cost)
        assert cost.cpu_s > 0
        assert cost.mem_bytes > 0

    def test_hash_kind_produces_same_counts(self):
        text = "a b a c b a"
        counts = {}
        for kind in ("map", "unordered_map", "dict"):
            step = WordCountStep(dict_kind=kind)
            tf, _ = step.count_document(text, make_dict(kind), TaskCost())
            counts[kind] = dict(tf.items())
        assert counts["map"] == counts["unordered_map"] == counts["dict"]


class TestMerge:
    def test_merge_df_pair_sums_counts(self):
        step = WordCountStep(dict_kind="map")
        a, b = make_dict("map"), make_dict("map")
        a.increment("x", 2)
        b.increment("x", 3)
        b.increment("y", 1)
        merged = step.merge_df_pair(a, b, TaskCost())
        assert merged.get("x") == 5
        assert merged.get("y") == 1


class TestRunSimulated:
    def test_results_independent_of_worker_count(self, stored_corpus, scheduler):
        storage, paths = stored_corpus
        step = WordCountStep(dict_kind="map")
        single, _ = step.run_simulated(scheduler, storage, paths, workers=1)
        multi, _ = step.run_simulated(scheduler, storage, paths, workers=8)
        assert single.df.to_dict() == multi.df.to_dict()
        assert single.total_tokens == multi.total_tokens
        assert [t.to_dict() for t in single.doc_tfs] == [
            t.to_dict() for t in multi.doc_tfs
        ]

    def test_doc_tfs_align_with_paths(self, stored_corpus, scheduler):
        storage, paths = stored_corpus
        step = WordCountStep(dict_kind="map")
        result, _ = step.run_simulated(scheduler, storage, paths, workers=4)
        assert result.n_docs == len(paths)
        assert result.paths == paths
        # Spot-check: recount one document functionally.
        text = storage.read_data(paths[3])
        expected, _ = step.count_document(text, make_dict("map"), TaskCost())
        assert result.doc_tfs[3].to_dict() == expected.to_dict()

    def test_phases_labelled_input_wc(self, stored_corpus, scheduler):
        storage, paths = stored_corpus
        result, timings = WordCountStep().run_simulated(
            scheduler, storage, paths, workers=8
        )
        assert all(t.name == PHASE_INPUT_WC for t in timings)
        assert len(timings) >= 2  # count phase + at least one merge level

    def test_parallel_run_is_faster_in_virtual_time(self, stored_corpus, scheduler):
        storage, paths = stored_corpus
        step = WordCountStep(dict_kind="map")
        _, t1 = step.run_simulated(scheduler, storage, paths, workers=1)
        _, t16 = step.run_simulated(scheduler, storage, paths, workers=16)
        assert sum(t.elapsed_s for t in t16) < sum(t.elapsed_s for t in t1)

    def test_input_bytes_recorded(self, stored_corpus, scheduler):
        storage, paths = stored_corpus
        result, _ = WordCountStep().run_simulated(scheduler, storage, paths)
        assert result.input_bytes == sum(storage.size(p) for p in paths)

    def test_scale_multiplies_costs_not_results(self, stored_corpus, scheduler):
        storage, paths = stored_corpus
        unit = WordCountStep(dict_kind="map")
        scaled = WordCountStep(
            dict_kind="map", scale=WorkloadScale(doc_factor=10, vocab_factor=2)
        )
        unit_result, unit_timings = unit.run_simulated(
            scheduler, storage, paths, workers=1
        )
        scaled_result, scaled_timings = scaled.run_simulated(
            scheduler, storage, paths, workers=1
        )
        assert scaled_result.df.to_dict() == unit_result.df.to_dict()
        # Count phase is document-proportional: 10x the virtual time.
        assert scaled_timings[0].elapsed_s == pytest.approx(
            10 * unit_timings[0].elapsed_s, rel=1e-6
        )

    def test_resident_bytes_uses_scale_factors(self, tiny_texts):
        unit = WordCountStep(dict_kind="map").run(tiny_texts)
        scaled = WordCountStep(
            dict_kind="map", scale=WorkloadScale(doc_factor=5, vocab_factor=2)
        ).run(tiny_texts)
        assert scaled.resident_bytes() > unit.resident_bytes()


class TestFunctionalRun:
    def test_run_on_texts(self, tiny_texts):
        result = WordCountStep(dict_kind="map").run(tiny_texts)
        assert result.n_docs == len(tiny_texts)
        assert result.df.get("the") > 0
        assert result.vocabulary_size == len(result.df)

    def test_hash_and_tree_agree(self, tiny_texts):
        tree = WordCountStep(dict_kind="map").run(tiny_texts)
        hashed = WordCountStep(dict_kind="unordered_map").run(tiny_texts)
        assert tree.df.to_dict() == hashed.df.to_dict()

    def test_memory_hashmap_exceeds_treemap(self, tiny_texts):
        """The Figure 4 memory effect: pre-sized tables dwarf tree nodes."""
        tree = WordCountStep(dict_kind="map").run(tiny_texts)
        hashed = WordCountStep(dict_kind="unordered_map", reserve=4096).run(tiny_texts)
        assert hashed.resident_bytes() > 20 * tree.resident_bytes()
