"""Cross-backend equivalence: identical operator output on every backend.

The contract of the real execution subsystem is that backend choice and
worker count change *wall-clock time only*: TF/IDF matrices, vocabularies,
idf tables and K-means assignments must be bit-identical across
sequential, threads and processes — and identical to the inline
(backend-free) reference path.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import run_pipeline
from repro.exec.process import make_backend
from repro.exec.shm import shm_available
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.ops.wordcount import WordCountStep
from repro.text.synth import MIX_PROFILE, generate_corpus
from repro.text.tokenizer import Tokenizer

BACKENDS = ("sequential", "threads", "processes")


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(MIX_PROFILE, scale=0.002, seed=7)


@pytest.fixture(scope="module")
def texts(corpus):
    return [doc.text for doc in corpus]


def _matrix_entries(result):
    return [
        (tuple(row.indices), tuple(row.values))
        for row in result.matrix.iter_rows()
    ]


def run_backend(name, fn, workers=2):
    backend = make_backend(name, workers)
    try:
        return fn(backend)
    finally:
        backend.close()


class TestWordCountEquivalence:
    def test_df_and_tokens_match_inline(self, texts):
        step = WordCountStep()
        inline = step.run(texts)
        for name in BACKENDS:
            result = run_backend(name, lambda b: step.run(texts, backend=b))
            assert result.df.to_dict() == inline.df.to_dict()
            assert result.doc_token_counts == inline.doc_token_counts
            assert result.total_tokens == inline.total_tokens
            assert result.input_bytes == inline.input_bytes

    def test_doc_tfs_preserve_input_order(self, texts):
        step = WordCountStep()
        inline = step.run(texts)
        result = run_backend(
            "processes", lambda b: step.run(texts, backend=b), workers=3
        )
        assert len(result.doc_tfs) == len(texts)
        for ours, reference in zip(result.doc_tfs, inline.doc_tfs):
            assert ours.to_dict() == reference.to_dict()


class TestTfIdfEquivalence:
    @pytest.mark.parametrize("dict_kind", ["map", "unordered_map"])
    def test_matrix_identical_across_backends(self, corpus, dict_kind):
        reference = TfIdfOperator(wc_dict_kind=dict_kind).fit_transform(corpus)
        ref_entries = _matrix_entries(reference)
        for name in BACKENDS:
            result = run_backend(
                name,
                lambda b: TfIdfOperator(wc_dict_kind=dict_kind).fit_transform(
                    corpus, backend=b
                ),
            )
            assert result.vocabulary == reference.vocabulary
            assert result.idf == reference.idf
            assert _matrix_entries(result) == ref_entries

    def test_min_df_pruning_matches_inline(self, corpus):
        operator_args = dict(min_df=2, tokenizer=Tokenizer(drop_stopwords=True))
        reference = TfIdfOperator(**operator_args).fit_transform(corpus)
        result = run_backend(
            "processes",
            lambda b: TfIdfOperator(**operator_args).fit_transform(
                corpus, backend=b
            ),
        )
        assert result.vocabulary == reference.vocabulary
        assert _matrix_entries(result) == _matrix_entries(reference)


class TestKMeansEquivalence:
    def test_assignments_identical_across_backends(self, corpus):
        matrix = TfIdfOperator().fit_transform(corpus).matrix
        results = {
            name: run_backend(
                name,
                lambda b: KMeansOperator(max_iters=4).fit(matrix, backend=b),
            )
            for name in BACKENDS
        }
        reference = results["sequential"]
        for name in ("threads", "processes"):
            assert results[name].assignments == reference.assignments
            assert (results[name].centroids == reference.centroids).all()
            assert results[name].inertia_history == reference.inertia_history
            assert results[name].n_iters == reference.n_iters

    def test_worker_count_does_not_change_output(self, corpus):
        matrix = TfIdfOperator().fit_transform(corpus).matrix
        one = run_backend(
            "processes",
            lambda b: KMeansOperator(max_iters=4).fit(matrix, backend=b),
            workers=1,
        )
        three = run_backend(
            "processes",
            lambda b: KMeansOperator(max_iters=4).fit(matrix, backend=b),
            workers=3,
        )
        assert one.assignments == three.assignments
        assert (one.centroids == three.centroids).all()


class TestPipelineEquivalence:
    def test_full_pipeline_identical(self, corpus):
        runs = {
            name: run_backend(
                name,
                lambda b: run_pipeline(
                    corpus,
                    backend=b,
                    tfidf=TfIdfOperator(),
                    kmeans=KMeansOperator(max_iters=3),
                ),
            )
            for name in BACKENDS
        }
        reference = runs["sequential"]
        for name in ("threads", "processes"):
            assert (
                _matrix_entries(runs[name].tfidf)
                == _matrix_entries(reference.tfidf)
            )
            assert (
                runs[name].kmeans.assignments == reference.kmeans.assignments
            )
            assert set(runs[name].phase_seconds) == {
                "input+wc",
                "transform",
                "kmeans",
            }


class TestShmEquivalence:
    """The shared-memory plane changes IPC volume, never output bits."""

    def _run(self, corpus, backend_name, workers, shm):
        backend = make_backend(backend_name, workers, shm=shm)
        try:
            return run_pipeline(
                corpus,
                backend=backend,
                tfidf=TfIdfOperator(),
                kmeans=KMeansOperator(max_iters=3),
            )
        finally:
            backend.close()

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm")
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_process_pipeline_identical_shm_on_and_off(self, corpus, workers):
        off = self._run(corpus, "processes", workers, shm=False)
        on = self._run(corpus, "processes", workers, shm=True)
        assert _matrix_entries(on.tfidf) == _matrix_entries(off.tfidf)
        assert on.tfidf.vocabulary == off.tfidf.vocabulary
        assert on.tfidf.idf == off.tfidf.idf
        assert on.kmeans.assignments == off.kmeans.assignments
        assert (on.kmeans.centroids == off.kmeans.centroids).all()
        assert on.kmeans.inertia_history == off.kmeans.inertia_history

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm")
    def test_shm_matches_inline_reference(self, corpus):
        inline = run_pipeline(
            corpus, tfidf=TfIdfOperator(), kmeans=KMeansOperator(max_iters=3)
        )
        on = self._run(corpus, "processes", 2, shm=True)
        assert _matrix_entries(on.tfidf) == _matrix_entries(inline.tfidf)
        assert on.kmeans.assignments == inline.kmeans.assignments

    def test_thread_backend_flag_is_noop(self, corpus):
        # The flag only affects the process backend; threads share an
        # address space and must produce identical output regardless.
        off = self._run(corpus, "threads", 2, shm=False)
        on = self._run(corpus, "threads", 2, shm=True)
        assert _matrix_entries(on.tfidf) == _matrix_entries(off.tfidf)
        assert on.kmeans.assignments == off.kmeans.assignments

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm")
    def test_shm_pipeline_reports_segment_accounting(self, corpus):
        on = self._run(corpus, "processes", 2, shm=True)
        off = self._run(corpus, "processes", 2, shm=False)
        assert on.ipc["total"]["segments"] >= 2  # matrix + broadcast + vocab
        assert off.ipc["total"]["segments"] == 0
        assert (
            on.ipc["phases"]["kmeans"]["task_pickle_bytes"]
            < off.ipc["phases"]["kmeans"]["task_pickle_bytes"]
        )


class TestPlannedEquivalence:
    """``plan="auto"`` changes scheduling only, never output bits.

    The adaptive planner may split phases across backends and fuse
    wc→transform; every planned run must still be bit-identical to every
    fixed-configuration run — including k-means centroids, compared raw.
    """

    @pytest.fixture(scope="class")
    def calibration(self, corpus):
        from repro.plan import CalibrationStore

        return CalibrationStore.probe(corpus)

    def _fingerprint(self, result):
        return (
            _matrix_entries(result.tfidf),
            result.tfidf.vocabulary,
            result.tfidf.idf,
            result.kmeans.assignments,
            result.kmeans.centroids.tobytes(),
            result.kmeans.inertia_history,
        )

    def _fixed(self, corpus, backend_name, workers, shm=None):
        backend = make_backend(backend_name, workers, shm=shm)
        try:
            return run_pipeline(
                corpus,
                backend=backend,
                tfidf=TfIdfOperator(),
                kmeans=KMeansOperator(max_iters=3),
            )
        finally:
            backend.close()

    def test_auto_plan_identical_to_every_fixed_config(
        self, corpus, calibration
    ):
        planned = run_pipeline(
            corpus,
            plan="auto",
            calibration=calibration,
            tfidf=TfIdfOperator(),
            kmeans=KMeansOperator(max_iters=3),
        )
        assert planned.backend_name == "planned"
        assert planned.plan is not None
        reference = self._fingerprint(planned)

        configs = [
            ("sequential", 1, None),
            ("threads", 2, None),
            ("processes", 2, None),
        ]
        if shm_available():
            configs.append(("processes", 1, True))
        for backend_name, workers, shm in configs:
            fixed = self._fixed(corpus, backend_name, workers, shm)
            assert self._fingerprint(fixed) == reference, (
                f"planned output diverged from {backend_name}-{workers}"
                f"{'+shm' if shm else ''}"
            )

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm")
    def test_fused_plan_identical_and_cuts_transform_ipc(
        self, corpus, calibration
    ):
        from repro.plan import PhasePlan, RealPlan

        fused_plan = RealPlan(
            phases={
                "input+wc": PhasePlan("input+wc", "processes", 1, True),
                "transform": PhasePlan(
                    "transform", "processes", 1, True,
                    fused_with_previous=True,
                ),
                "kmeans": PhasePlan("kmeans", "processes", 1, True),
            },
            calibration=calibration.describe(),
            n_docs=len(corpus),
        )
        fused = run_pipeline(
            corpus,
            plan=fused_plan,
            tfidf=TfIdfOperator(),
            kmeans=KMeansOperator(max_iters=3),
        )
        unfused = self._fixed(corpus, "processes", 1, shm=True)
        assert self._fingerprint(fused) == self._fingerprint(unfused)

        # Worker-resident fusion must show up in the transport bill: the
        # fused transform re-ships no per-doc counts, so its task pickles
        # collapse to per-task envelopes.
        fused_bytes = fused.ipc["phases"]["transform"]["task_pickle_bytes"]
        unfused_bytes = unfused.ipc["phases"]["transform"]["task_pickle_bytes"]
        assert fused_bytes < unfused_bytes / 10
        assert fused.plan.fused


class TestTiledEquivalence:
    """Out-of-core tiling changes the data plane only, never output bits.

    A ``memory_budget`` spills the TF/IDF matrix to disk tiles and
    streams k-means chunk-at-a-time — on every backend, under budgets
    well below the matrix footprint, the scores, assignments, centroids
    (compared raw) and inertia trajectory must equal the untiled run's
    exactly.
    """

    BUDGET = 50_000  # bytes; far below the scale-0.002 matrix footprint

    def _fingerprint(self, result):
        return (
            _matrix_entries(result.tfidf),
            result.tfidf.vocabulary,
            result.tfidf.idf,
            result.kmeans.assignments,
            result.kmeans.centroids.tobytes(),
            result.kmeans.inertia_history,
        )

    def _run(self, corpus, backend_name=None, workers=2, budget=None):
        backend = (
            make_backend(backend_name, workers)
            if backend_name is not None
            else None
        )
        try:
            return run_pipeline(
                corpus,
                backend=backend,
                tfidf=TfIdfOperator(),
                kmeans=KMeansOperator(max_iters=3),
                memory_budget=budget,
            )
        finally:
            if backend is not None:
                backend.close()

    def test_tiled_inline_identical_to_untiled(self, corpus):
        reference = self._run(corpus)
        tiled = self._run(corpus, budget=self.BUDGET)
        try:
            assert self._fingerprint(tiled) == self._fingerprint(reference)
            stats = tiled.tiles
            assert stats is not None
            assert stats["tiles"] > 1
            assert stats["peak_pinned_bytes"] <= self.BUDGET
        finally:
            tiled.tfidf.matrix.close()

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_tiled_identical_on_every_backend(self, corpus, backend_name):
        reference = self._run(corpus, "sequential")
        tiled = self._run(corpus, backend_name, budget=self.BUDGET)
        try:
            assert self._fingerprint(tiled) == self._fingerprint(reference), (
                f"tiled output diverged from untiled on {backend_name}"
            )
        finally:
            tiled.tfidf.matrix.close()

    def test_kmeans_plus_plus_tiled_identical(self, corpus):
        def run(budget):
            result = run_pipeline(
                corpus,
                tfidf=TfIdfOperator(),
                kmeans=KMeansOperator(max_iters=3, init="kmeans++", seed=11),
                memory_budget=budget,
            )
            fp = self._fingerprint(result)
            if budget is not None:
                result.tfidf.matrix.close()
            return fp

        assert run(self.BUDGET) == run(None)

    def test_untiled_run_reports_no_tiles(self, corpus):
        assert self._run(corpus).tiles is None


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup measurement needs a multi-core host",
)
def test_process_backend_speeds_up_phase1():
    """Acceptance: >= 1.5x on the TF/IDF phase-1 loop at 4 workers."""
    corpus = generate_corpus(MIX_PROFILE, scale=0.05, seed=0)
    texts = [doc.text for doc in corpus]
    step = WordCountStep()

    sequential = make_backend("sequential")
    start = time.perf_counter()
    step.run(texts, backend=sequential)
    sequential_s = time.perf_counter() - start

    processes = make_backend("processes", 4)
    try:
        step.run(texts[:32], backend=processes)  # warm the pool
        start = time.perf_counter()
        step.run(texts, backend=processes)
        parallel_s = time.perf_counter() - start
    finally:
        processes.close()

    assert sequential_s / parallel_s >= 1.5, (
        f"expected >= 1.5x, got {sequential_s / parallel_s:.2f}x "
        f"({sequential_s:.3f}s sequential vs {parallel_s:.3f}s at 4 workers)"
    )
