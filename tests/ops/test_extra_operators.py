"""Tests for the extension operators: top-k terms, k-NN, MinHash."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dicts import make_dict
from repro.errors import OperatorError
from repro.exec import SimScheduler, TaskCost, paper_node
from repro.ops import (
    KnnClassifier,
    MinHasher,
    TfIdfOperator,
    TopTermsOp,
    shingles,
    top_k_terms,
)
from repro.sparse import CsrMatrix, SparseVector
from repro.text import Corpus, Tokenizer


class TestTopK:
    def counts(self, kind="map"):
        d = make_dict(kind)
        for term, count in [("apple", 5), ("pear", 3), ("fig", 7), ("plum", 3)]:
            d.put(term, count)
        return d

    def test_ranking(self):
        ranked = top_k_terms(self.counts(), k=2)
        assert [(t.term, t.count) for t in ranked] == [("fig", 7), ("apple", 5)]

    def test_ties_resolve_lexicographically(self):
        ranked = top_k_terms(self.counts(), k=4)
        assert [(t.term, t.count) for t in ranked] == [
            ("fig", 7),
            ("apple", 5),
            ("pear", 3),
            ("plum", 3),
        ]

    def test_k_larger_than_vocabulary(self):
        assert len(top_k_terms(self.counts(), k=100)) == 4

    def test_invalid_k(self):
        with pytest.raises(OperatorError):
            top_k_terms(self.counts(), k=0)

    def test_same_result_across_dict_kinds(self):
        results = [
            [(t.term, t.count) for t in top_k_terms(self.counts(kind), k=3)]
            for kind in ("map", "unordered_map", "btree", "dict")
        ]
        assert all(r == results[0] for r in results)

    def test_cost_metered(self):
        cost = TaskCost()
        top_k_terms(self.counts(), k=2, cost=cost)
        assert cost.cpu_s > 0

    @given(st.dictionaries(st.text(min_size=1, max_size=4), st.integers(1, 50),
                           min_size=1, max_size=40), st.integers(1, 10))
    def test_matches_full_sort(self, counts, k):
        d = make_dict("map")
        for term, count in counts.items():
            d.put(term, count)
        ranked = [(t.count, t.term) for t in top_k_terms(d, k=k)]
        expected = sorted(
            ((c, t) for t, c in counts.items()),
            key=lambda pair: (-pair[0], pair[1]),
        )[:k]
        assert ranked == [(c, t) for c, t in expected]

    def test_workflow_op_fan_out(self, stored_corpus, scheduler):
        """TopTermsOp consumes the same scores port as k-means (fan-out)."""
        from repro.core import Workflow
        from repro.core.operator import KMeansOp, TfIdfOp

        storage, _ = stored_corpus
        wf = Workflow("fanout")
        wf.add(TfIdfOp())
        wf.add(KMeansOp(n_clusters=3, max_iters=3, output_path=None))
        wf.add(TopTermsOp(k=5))
        wf.connect("tfidf", "scores", "kmeans", "scores")
        wf.connect("tfidf", "scores", "topk", "scores")
        result = wf.run(
            scheduler, storage, inputs={"tfidf.corpus_prefix": "in/"}, workers=4
        )
        top = result.value("topk.top_terms")
        assert len(top) == 5
        assert all(a.count >= b.count for a, b in zip(top, top[1:]))
        assert "topk" in result.breakdown()


class TestKnn:
    def labelled_matrix(self):
        rows = [
            SparseVector([0, 1], [0.8, 0.6]),
            SparseVector([0, 1], [0.6, 0.8]),
            SparseVector([2, 3], [0.8, 0.6]),
            SparseVector([2, 3], [0.6, 0.8]),
        ]
        return CsrMatrix.from_rows(rows, n_cols=4), ["a", "a", "b", "b"]

    def test_predicts_nearest_class(self):
        matrix, labels = self.labelled_matrix()
        clf = KnnClassifier(k=2).fit(matrix, labels)
        assert clf.predict(SparseVector([0, 1], [0.7, 0.7])) == "a"
        assert clf.predict(SparseVector([2, 3], [0.7, 0.7])) == "b"

    def test_neighbors_sorted_by_similarity(self):
        matrix, labels = self.labelled_matrix()
        clf = KnnClassifier(k=4).fit(matrix, labels)
        neighbors = clf.neighbors(SparseVector([0], [1.0]))
        sims = [n.similarity for n in neighbors]
        assert sims == sorted(sims, reverse=True)
        assert neighbors[0].label == "a"

    def test_unfitted_raises(self):
        with pytest.raises(OperatorError):
            KnnClassifier().predict(SparseVector([0], [1.0]))

    def test_label_count_mismatch(self):
        matrix, _ = self.labelled_matrix()
        with pytest.raises(OperatorError):
            KnnClassifier().fit(matrix, ["only-one"])

    def test_invalid_k(self):
        with pytest.raises(OperatorError):
            KnnClassifier(k=0)

    def test_predict_many_with_simulation(self):
        matrix, labels = self.labelled_matrix()
        clf = KnnClassifier(k=1).fit(matrix, labels)
        predictions = clf.predict_many(
            matrix, scheduler=SimScheduler(paper_node(4)), workers=4
        )
        assert predictions == labels  # each point is its own neighbour

    def test_classifies_real_tfidf_topics(self, tiny_corpus):
        """End-to-end: train on 8 docs, classify the remaining 2."""
        result = TfIdfOperator(min_df=1).fit_transform(tiny_corpus)
        labels = ["animals"] * 4 + ["places"] * 6
        train_rows = [result.matrix.row(i) for i in range(8)]
        train = CsrMatrix.from_rows(train_rows, n_cols=result.matrix.n_cols)
        clf = KnnClassifier(k=3).fit(train, labels[:8])
        prediction = clf.predict(result.matrix.row(8))
        assert prediction in {"animals", "places"}


class TestMinHash:
    def test_shingles(self):
        assert shingles(["a", "b", "c", "d"], width=3) == {"a b c", "b c d"}
        assert shingles(["a"], width=3) == {"a"}
        assert shingles([], width=3) == set()
        with pytest.raises(OperatorError):
            shingles(["a"], width=0)

    def test_identical_documents_have_identical_signatures(self):
        hasher = MinHasher(num_hashes=32, bands=8)
        tokens = "the quick brown fox jumps over the lazy dog".split()
        assert hasher.signature(tokens) == hasher.signature(list(tokens))

    def test_similarity_bounds(self):
        hasher = MinHasher(num_hashes=32, bands=8)
        a = hasher.signature("alpha beta gamma delta epsilon zeta".split())
        b = hasher.signature("one two three four five six seven".split())
        sim_self = MinHasher.estimate_similarity(a, a)
        sim_other = MinHasher.estimate_similarity(a, b)
        assert sim_self == 1.0
        assert 0.0 <= sim_other < 0.5

    def test_mismatched_signature_lengths(self):
        with pytest.raises(OperatorError):
            MinHasher.estimate_similarity((1, 2), (1, 2, 3))

    def test_invalid_parameters(self):
        with pytest.raises(OperatorError):
            MinHasher(num_hashes=0)
        with pytest.raises(OperatorError):
            MinHasher(num_hashes=10, bands=3)  # not divisible

    def test_finds_near_duplicates(self):
        base = ("data analytics operators require careful design and must be "
                "highly optimized to achieve low processing times on modern "
                "parallel hardware with many cores and deep memory systems").split()
        near = list(base)
        near[5] = "thoughtful"  # one token changed
        distinct = ("completely different text about cooking pasta with basil "
                    "garlic tomatoes and slowly simmered sauce for dinner").split()
        streams = [base, near, distinct]
        pairs = MinHasher(num_hashes=64, bands=16, seed=1).find_duplicates(
            streams, threshold=0.5
        )
        assert any({p.left, p.right} == {0, 1} for p in pairs)
        assert not any(2 in (p.left, p.right) for p in pairs)

    def test_duplicates_with_simulation(self):
        streams = [["a", "b", "c", "d"]] * 3
        hasher = MinHasher(num_hashes=16, bands=4)
        pairs = hasher.find_duplicates(
            streams, scheduler=SimScheduler(paper_node(4)), workers=4
        )
        assert {(p.left, p.right) for p in pairs} == {(0, 1), (0, 2), (1, 2)}
        assert all(p.similarity == 1.0 for p in pairs)

    def test_threshold_validation(self):
        with pytest.raises(OperatorError):
            MinHasher().find_duplicates([["a"]], threshold=1.5)

    def test_corpus_dedup_end_to_end(self):
        """Realistic flow: tokenize a corpus, dedup, keep representatives."""
        tokenizer = Tokenizer()
        texts = [
            "The committee approved the annual budget for the research program",
            "The committee approved the annual budget for the research programme",
            "Bake the bread in a hot oven until the crust turns golden brown",
        ]
        corpus = Corpus.from_texts("dedup", texts)
        streams = [tokenizer.tokens(doc.text) for doc in corpus]
        pairs = MinHasher(num_hashes=64, bands=32, shingle_width=2).find_duplicates(
            streams, threshold=0.6
        )
        assert [(p.left, p.right) for p in pairs] == [(0, 1)]
