"""Tests for the WEKA-style dense baseline."""

import pytest

from repro.errors import OperatorError
from repro.exec import SimScheduler, paper_node
from repro.ops import KMeansOperator, SimpleKMeansBaseline, TfIdfOperator
from repro.sparse import CsrMatrix, SparseVector


class TestCorrectness:
    def test_matches_sparse_operator(self, tiny_corpus):
        """Dense and sparse K-means are the same algorithm: identical output."""
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        sparse = KMeansOperator(n_clusters=3, max_iters=10, seed=0).fit(matrix)
        dense = SimpleKMeansBaseline(n_clusters=3, max_iters=10, seed=0).run_simulated(
            SimScheduler(paper_node(1)), matrix
        )
        assert dense.assignments == sparse.assignments
        assert dense.n_iters == sparse.n_iters

    def test_converges(self, tiny_corpus):
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        result = SimpleKMeansBaseline(n_clusters=2, max_iters=30).run_simulated(
            SimScheduler(paper_node(1)), matrix
        )
        assert result.converged

    def test_too_few_docs_raises(self):
        matrix = CsrMatrix.from_rows([SparseVector([0], [1.0])], n_cols=1)
        with pytest.raises(OperatorError):
            SimpleKMeansBaseline(n_clusters=4).run_simulated(
                SimScheduler(paper_node(1)), matrix
            )

    def test_invalid_clusters(self):
        with pytest.raises(OperatorError):
            SimpleKMeansBaseline(n_clusters=0)


class TestCostPathologies:
    def test_baseline_is_serial(self, tiny_corpus):
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        result = SimpleKMeansBaseline(n_clusters=2, max_iters=3).run_simulated(
            SimScheduler(paper_node(16)), matrix
        )
        assert all(p.workers == 1 for p in result.timeline.phases)

    def test_dense_baseline_far_slower_than_sparse(self, tiny_corpus):
        """The §3.1 WEKA contrast: dense-over-vocabulary work dominates.

        The tiny corpus is only ~13% sparse, so the gap here is modest; the
        realistic-sparsity contrast is asserted separately below.
        """
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        scheduler = SimScheduler(paper_node(1))
        sparse = KMeansOperator(n_clusters=2, max_iters=5).run_simulated(
            scheduler, matrix, workers=1
        )
        dense = SimpleKMeansBaseline(n_clusters=2, max_iters=5).run_simulated(
            scheduler, matrix
        )
        assert dense.timeline.total_s > 2 * sparse.timeline.total_s

    def test_gap_grows_with_sparsity(self):
        """At realistic sparsity (nnz << V) the dense/sparse cost ratio is
        orders of magnitude, matching >2h vs 3.3s."""
        baseline = SimpleKMeansBaseline(n_clusters=8, max_iters=1)
        dense_iter = baseline.iteration_seconds(n_docs=23_432, vocabulary=184_743)
        # Sparse assignment cost for the same workload, from the constants.
        nnz_per_doc = 400
        sparse_iter = (
            23_432 * nnz_per_doc * 8 * baseline.costs.kmeans_flop_ns * 1e-9
        )
        assert dense_iter > 100 * sparse_iter

    def test_iteration_seconds_scales_with_vocabulary(self):
        baseline = SimpleKMeansBaseline(n_clusters=8)
        assert baseline.iteration_seconds(1000, 200_000) == pytest.approx(
            10 * baseline.iteration_seconds(1000, 20_000), rel=1e-6
        )

    def test_projected_full_scale_exceeds_two_hours(self):
        """Paper: WEKA SimpleKMeans on Mix was aborted after 2 hours."""
        baseline = SimpleKMeansBaseline(n_clusters=8, max_iters=10)
        projected = baseline.projected_seconds(n_docs=23_432, vocabulary=184_743)
        assert projected > 2 * 3600

    def test_projection_consistent_with_simulation(self, tiny_corpus):
        matrix = TfIdfOperator().fit_transform(tiny_corpus).matrix
        baseline = SimpleKMeansBaseline(n_clusters=2, max_iters=3)
        result = baseline.run_simulated(SimScheduler(paper_node(1)), matrix)
        projected = (
            matrix.n_rows
            * matrix.n_cols
            * baseline.costs.dense_alloc_ns_per_element
            * 1e-9
            + result.n_iters * baseline.iteration_seconds(matrix.n_rows, matrix.n_cols)
        )
        assert result.timeline.total_s == pytest.approx(projected, rel=0.05)
