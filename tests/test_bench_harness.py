"""Tests for the shared benchmark harness."""

import pytest

from repro.bench import prepare_workload, run_paper_workflow
from repro.bench.harness import _CACHE
from repro.text import MIX_PROFILE


class TestPrepareWorkload:
    def test_workload_statistics(self):
        workload = prepare_workload(MIX_PROFILE, scale=0.002, seed=5)
        assert workload.n_docs == round(MIX_PROFILE.n_docs * 0.002)
        assert workload.stats.distinct_words > 0
        assert workload.prefix == "in/"
        assert len(list(workload.storage.list("in/"))) == workload.n_docs

    def test_scale_factors_extrapolate_to_full(self):
        workload = prepare_workload(MIX_PROFILE, scale=0.002, seed=5)
        assert workload.scale.doc_factor == pytest.approx(
            MIX_PROFILE.n_docs / workload.n_docs
        )
        assert workload.scale.vocab_factor > 1.0

    def test_caching_returns_same_object(self):
        a = prepare_workload(MIX_PROFILE, scale=0.002, seed=5)
        b = prepare_workload(MIX_PROFILE, scale=0.002, seed=5)
        assert a is b
        assert (MIX_PROFILE.name, 0.002, 5) in _CACHE

    def test_different_seed_not_cached_together(self):
        a = prepare_workload(MIX_PROFILE, scale=0.002, seed=5)
        b = prepare_workload(MIX_PROFILE, scale=0.002, seed=6)
        assert a is not b


class TestRunPaperWorkflow:
    @pytest.fixture(scope="class")
    def workload(self):
        return prepare_workload(MIX_PROFILE, scale=0.002, seed=5)

    def test_returns_full_scale_result(self, workload):
        result = run_paper_workflow(workload, workers=8, max_iters=3)
        # Full-scale virtual seconds: far larger than a 47-doc run would be.
        assert result.total_s > 1.0
        assert "input+wc" in result.breakdown()

    def test_mode_and_dict_kind_forwarded(self, workload):
        discrete = run_paper_workflow(
            workload, mode="discrete", wc_dict_kind="unordered_map",
            workers=4, max_iters=3,
        )
        assert "tfidf-output" in discrete.breakdown()
        assert discrete.peak_resident_bytes > 1e9  # u-map pre-sized tables

    def test_workers_capped_by_cores_argument(self, workload):
        result = run_paper_workflow(workload, workers=20, cores=20, max_iters=3)
        assert result.workers == 20
