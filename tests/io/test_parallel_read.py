"""Tests for the bounded-prefetch parallel corpus reader (paper §3.2)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.pipeline import PHASE_READ, run_pipeline
from repro.errors import ConfigurationError, StorageError
from repro.io.corpus_io import store_corpus
from repro.io.parallel_read import (
    DocumentStream,
    corpus_stream,
    default_prefetch,
    read_paths,
)
from repro.io.storage import FsStorage, MemStorage
from repro.text.synth import MIX_PROFILE, generate_corpus


def _populate(storage, n=12):
    paths = [f"doc-{i:03d}.txt" for i in range(n)]
    for i, path in enumerate(paths):
        storage.write(path, f"contents of document {i} " * (i + 1))
    return paths


class SlowFirstStorage(MemStorage):
    """Earlier paths sleep longer, so later reads complete first."""

    def read(self, path):
        index = int(path.split("-")[1].split(".")[0])
        if index < 4:
            time.sleep(0.05 * (4 - index))
        return super().read(path)


class CountingStorage(MemStorage):
    """Counts reads started, so tests can bound the in-flight window."""

    def __init__(self):
        super().__init__()
        self.started = 0
        self._lock = threading.Lock()

    def read(self, path):
        with self._lock:
            self.started += 1
        return super().read(path)


class TestReadPaths:
    def test_serial_matches_storage(self):
        storage = MemStorage()
        paths = _populate(storage)
        triples = list(read_paths(storage, paths, workers=1))
        assert [p for p, _, _ in triples] == paths
        assert [t for _, t, _ in triples] == [storage.read_data(p) for p in paths]

    def test_ordered_despite_out_of_order_completion(self):
        storage = SlowFirstStorage()
        paths = _populate(storage, n=10)
        triples = list(read_paths(storage, paths, workers=4, prefetch=8))
        # Reads for later paths finished first, delivery order must not.
        assert [p for p, _, _ in triples] == paths
        assert [t for _, t, _ in triples] == [storage.read_data(p) for p in paths]

    def test_per_file_costs_preserved(self):
        storage = MemStorage()
        paths = _populate(storage)
        for _, text, cost in read_paths(storage, paths, workers=3):
            assert cost.disk_read_bytes == len(text)
            assert cost.disk_opens == 1

    def test_bounded_prefetch_backpressure(self):
        storage = CountingStorage()
        paths = _populate(storage, n=24)
        prefetch = 5
        delivered = 0
        peak = 0
        for _ in read_paths(storage, paths, workers=4, prefetch=prefetch):
            delivered += 1
            # Stall the consumer so the pool would run ahead if it could.
            time.sleep(0.002)
            peak = max(peak, storage.started - delivered)
        assert delivered == len(paths)
        # In-flight files (submitted, not yet delivered) never exceed the
        # window, even while the consumer sits on a document.
        assert peak <= prefetch

    def test_missing_file_raises_naming_path(self):
        storage = MemStorage()
        paths = _populate(storage, n=6)
        paths.insert(3, "ghost.txt")
        with pytest.raises(StorageError, match="ghost.txt"):
            list(read_paths(storage, paths, workers=2))

    def test_rejects_bad_worker_and_prefetch_counts(self):
        storage = MemStorage()
        with pytest.raises(ConfigurationError):
            list(read_paths(storage, [], workers=0))
        with pytest.raises(ConfigurationError):
            list(read_paths(storage, ["a"], workers=2, prefetch=0))

    def test_early_exit_does_not_hang(self):
        storage = MemStorage()
        paths = _populate(storage, n=20)
        reads = read_paths(storage, paths, workers=4, prefetch=4)
        assert next(reads)[0] == paths[0]
        reads.close()  # abandoning mid-stream must release the pool


class TestDefaultPrefetch:
    def test_scales_with_workers(self):
        assert default_prefetch(1) >= 2
        assert default_prefetch(4) == 16


class TestDocumentStream:
    def test_yields_documents_in_order_with_metering(self):
        storage = MemStorage()
        paths = _populate(storage, n=8)
        stream = DocumentStream(storage, paths, workers=3)
        assert len(stream) == 8
        docs = list(stream)
        assert [d.doc_id for d in docs] == list(range(8))
        assert [d.name for d in docs] == paths
        assert stream.n_read == 8
        assert stream.bytes_read == sum(len(d.text) for d in docs)
        assert stream.total_cost.disk_read_bytes == stream.bytes_read
        assert stream.total_cost.disk_opens == 8

    def test_single_use(self):
        storage = MemStorage()
        stream = DocumentStream(storage, _populate(storage, n=3))
        list(stream)
        with pytest.raises(StorageError, match="single-use"):
            list(stream)

    def test_corpus_stream_lists_by_prefix(self):
        storage = MemStorage()
        _populate(storage, n=5)
        storage.write("other/unrelated.txt", "not a document")
        stream = corpus_stream(storage, prefix="doc-", workers=2)
        assert len(stream) == 5
        assert [d.name for d in stream] == [f"doc-{i:03d}.txt" for i in range(5)]

    def test_close_is_idempotent_and_safe_before_and_after_iteration(self):
        storage = MemStorage()
        stream = DocumentStream(storage, _populate(storage, n=4), workers=2)
        stream.close()  # before iteration: nothing to tear down
        docs = list(stream)
        assert len(docs) == 4
        stream.close()  # after clean exhaustion
        stream.close()  # double-close

    def test_close_mid_stream_releases_reader_threads(self):
        storage = MemStorage()
        stream = DocumentStream(storage, _populate(storage, n=20), workers=3)
        iterator = iter(stream)
        assert next(iterator).doc_id == 0
        assert _reader_threads(), "reader pool should be running mid-stream"
        stream.close()
        _assert_no_reader_threads()

    def test_records_read_spans_when_armed(self):
        from repro.exec.spans import SpanRecorder

        storage = MemStorage()
        paths = _populate(storage, n=6)
        recorder = SpanRecorder()
        recorder.begin_run()
        stream = DocumentStream(storage, paths, workers=2)
        stream.spans = recorder
        docs = list(stream)
        spans = recorder.spans
        assert len(spans) == 6
        assert all(s.phase == "read" for s in spans)
        assert sorted(s.task_id for s in spans) == list(range(6))
        assert sum(s.out_bytes for s in spans) == sum(len(d.text) for d in docs)
        # Reader threads are distinct lanes; serial input would be one.
        assert recorder.n_lanes >= 1

    def test_disarmed_recorder_records_nothing(self):
        from repro.exec.spans import SpanRecorder

        storage = MemStorage()
        stream = DocumentStream(storage, _populate(storage, n=3), workers=2)
        stream.spans = SpanRecorder()  # never armed
        list(stream)
        assert stream.spans.spans == []


def _reader_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith("repro-read") and t.is_alive()
    ]


def _assert_no_reader_threads(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _reader_threads():
            return
        time.sleep(0.01)
    raise AssertionError(
        f"reader threads leaked: {[t.name for t in _reader_threads()]}"
    )


class TestPipelineEquivalence:
    """Streamed input must be bit-identical to the materialized baseline."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(MIX_PROFILE, scale=0.002, seed=7)

    def _run_streamed(self, storage, workers, prefetch=None):
        stream = corpus_stream(storage, workers=workers, prefetch=prefetch)
        return run_pipeline(stream), stream

    def _assert_identical(self, a, b):
        ma, mb = a.tfidf.matrix, b.tfidf.matrix
        assert (ma.n_rows, ma.n_cols) == (mb.n_rows, mb.n_cols)
        for ra, rb in zip(ma.iter_rows(), mb.iter_rows()):
            assert ra.indices == rb.indices
            assert ra.values == rb.values
        assert a.kmeans.assignments == b.kmeans.assignments

    @pytest.mark.parametrize("make_storage", [MemStorage, "fs"])
    def test_parallel_read_matches_serial(self, corpus, make_storage, tmp_path):
        storage = (
            FsStorage(str(tmp_path / "corpus"))
            if make_storage == "fs"
            else make_storage()
        )
        store_corpus(storage, corpus)
        baseline = run_pipeline(corpus)
        serial, _ = self._run_streamed(storage, workers=1)
        parallel, stream = self._run_streamed(storage, workers=4, prefetch=6)
        self._assert_identical(serial, baseline)
        self._assert_identical(parallel, baseline)
        assert stream.n_read == len(corpus)

    def test_streamed_run_reports_read_phase(self, corpus, tmp_path):
        storage = FsStorage(str(tmp_path / "corpus"))
        store_corpus(storage, corpus)
        result, _ = self._run_streamed(storage, workers=2)
        assert PHASE_READ in result.phase_seconds
        assert result.phase_seconds[PHASE_READ] >= 0.0
        # A materialized corpus has no read phase (legacy accounting).
        assert PHASE_READ not in run_pipeline(corpus).phase_seconds


class TestMidRunFailureCleanup:
    """A phase that raises mid-run must not leak the stream's readers."""

    class _BoomWordcount:
        """Stands in for the wordcount step: consumes a little, then dies."""

        def run(self, corpus, backend=None):
            for i, _ in enumerate(corpus):
                if i >= 2:
                    raise RuntimeError("phase exploded mid-stream")
            raise AssertionError("stream should outlast two documents")

    def test_phase_error_mid_stream_does_not_leak_reader_threads(self):
        from repro.ops.tfidf import TfIdfOperator

        storage = MemStorage()
        paths = _populate(storage, n=30)
        stream = DocumentStream(storage, paths, workers=3, prefetch=4)
        tfidf = TfIdfOperator()
        tfidf.wordcount = self._BoomWordcount()
        with pytest.raises(RuntimeError, match="phase exploded"):
            run_pipeline(stream, tfidf=tfidf)
        _assert_no_reader_threads()

    def test_post_stream_phase_error_still_cleans_up(self):
        """An error *after* the stream is exhausted hits the same finally."""
        from repro.ops.kmeans import KMeansOperator
        from repro.ops.tfidf import TfIdfOperator

        class BoomKMeans(KMeansOperator):
            def fit(self, matrix, backend=None):
                raise RuntimeError("kmeans exploded")

        storage = MemStorage()
        stream = DocumentStream(storage, _populate(storage, n=8), workers=2)
        with pytest.raises(RuntimeError, match="kmeans exploded"):
            run_pipeline(stream, tfidf=TfIdfOperator(), kmeans=BoomKMeans())
        _assert_no_reader_threads()


class FlakyStorage(MemStorage):
    """Raises transient OSError on the first ``failures`` reads per path."""

    def __init__(self, failures=2, flaky_paths=None):
        super().__init__()
        self.failures = failures
        self.flaky_paths = flaky_paths
        self.attempts = {}
        self._lock = threading.Lock()

    def read(self, path):
        with self._lock:
            seen = self.attempts.get(path, 0)
            self.attempts[path] = seen + 1
        flaky = self.flaky_paths is None or path in self.flaky_paths
        if flaky and seen < self.failures:
            raise OSError(5, "simulated transient I/O error", path)
        return super().read(path)


class TestReaderRetry:
    """Reader threads absorb transient OSError under a retry policy."""

    def _retry(self, attempts=3):
        from repro.exec.resilience import RetryPolicy

        return RetryPolicy(max_attempts=attempts, backoff_base_s=0.0)

    def test_transient_oserror_is_absorbed(self):
        storage = FlakyStorage(failures=2, flaky_paths={"doc-003.txt"})
        paths = _populate(storage)
        triples = list(
            read_paths(storage, paths, workers=3, retry=self._retry())
        )
        assert [p for p, _, _ in triples] == paths
        assert storage.attempts["doc-003.txt"] == 3
        assert [t for _, t, _ in triples] == [storage.read_data(p) for p in paths]

    def test_exhaustion_names_the_failing_path(self):
        storage = FlakyStorage(failures=99, flaky_paths={"doc-001.txt"})
        paths = _populate(storage, n=4)
        with pytest.raises(StorageError, match=r"doc-001\.txt.*3 attempt"):
            list(read_paths(storage, paths, workers=2, retry=self._retry(3)))
        assert storage.attempts["doc-001.txt"] == 3

    def test_missing_file_stays_eager(self):
        # StorageError from the storage itself is permanent: no retries.
        storage = CountingStorage()
        _populate(storage, n=2)
        with pytest.raises(StorageError):
            list(
                read_paths(
                    storage,
                    ["doc-000.txt", "nope.txt"],
                    workers=1,
                    retry=self._retry(5),
                )
            )
        assert storage.started <= 2  # no re-reads of the missing path

    def test_stream_passes_retry_through(self):
        storage = FlakyStorage(failures=1)
        paths = _populate(storage, n=8)
        stream = DocumentStream(
            storage, paths, workers=2, retry=self._retry()
        )
        corpus = [doc for doc in stream]
        assert len(corpus) == 8
        # Every path failed once and was re-read.
        assert all(storage.attempts[p] == 2 for p in paths)

    def test_without_policy_transient_error_is_fatal(self):
        storage = FlakyStorage(failures=1)
        paths = _populate(storage, n=4)
        with pytest.raises(OSError):
            list(read_paths(storage, paths, workers=2))
