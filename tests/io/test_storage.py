"""Tests for storage backends and corpus persistence."""

import pytest

from repro.errors import StorageError
from repro.io import (
    FsStorage,
    MemStorage,
    corpus_paths,
    load_corpus,
    read_document,
    store_corpus,
)
from repro.text import Corpus


@pytest.fixture(params=["mem", "fs"])
def storage(request, tmp_path):
    if request.param == "mem":
        return MemStorage()
    return FsStorage(str(tmp_path / "store"))


class TestStorageBackends:
    def test_write_then_read(self, storage):
        storage.write("a.txt", "hello")
        data, cost = storage.read("a.txt")
        assert data == "hello"
        assert cost.disk_read_bytes == 5
        assert cost.disk_opens == 1

    def test_write_cost_reports_bytes(self, storage):
        cost = storage.write("a.txt", "12345678")
        assert cost.disk_write_bytes == 8
        assert cost.disk_opens == 1

    def test_overwrite_replaces(self, storage):
        storage.write("a.txt", "one")
        storage.write("a.txt", "two")
        assert storage.read_data("a.txt") == "two"

    def test_missing_file_raises(self, storage):
        with pytest.raises(StorageError):
            storage.read("missing.txt")
        with pytest.raises(StorageError):
            storage.size("missing.txt")

    def test_exists(self, storage):
        assert not storage.exists("x")
        storage.write("x", "data")
        assert storage.exists("x")

    def test_size(self, storage):
        storage.write("x", "abcd")
        assert storage.size("x") == 4

    def test_delete_is_idempotent(self, storage):
        storage.write("x", "data")
        storage.delete("x")
        storage.delete("x")
        assert not storage.exists("x")

    def test_list_with_prefix_sorted(self, storage):
        storage.write("docs/b.txt", "b")
        storage.write("docs/a.txt", "a")
        storage.write("other/c.txt", "c")
        assert list(storage.list("docs/")) == ["docs/a.txt", "docs/b.txt"]

    def test_total_bytes(self, storage):
        storage.write("p/a", "12")
        storage.write("p/b", "345")
        assert storage.total_bytes("p/") == 5

    def test_nested_paths(self, storage):
        storage.write("a/b/c/d.txt", "deep")
        assert storage.read_data("a/b/c/d.txt") == "deep"


class TestFsStorageSpecifics:
    def test_escaping_root_rejected(self, tmp_path):
        store = FsStorage(str(tmp_path / "root"))
        with pytest.raises(StorageError):
            store.write("../evil.txt", "nope")

    def test_files_visible_on_real_filesystem(self, tmp_path):
        store = FsStorage(str(tmp_path / "root"))
        store.write("out.arff", "@relation r")
        assert (tmp_path / "root" / "out.arff").read_text() == "@relation r"


class TestCorpusIo:
    def make_corpus(self):
        return Corpus.from_texts("c", ["first doc", "second doc here"])

    def test_store_and_load_roundtrip(self, storage):
        corpus = self.make_corpus()
        cost = store_corpus(storage, corpus, prefix="in/")
        assert cost.disk_opens == 2
        assert cost.disk_write_bytes == corpus.total_bytes
        loaded = load_corpus(storage, "in/", name="c")
        assert [d.text for d in loaded] == [d.text for d in corpus]

    def test_corpus_paths(self, storage):
        store_corpus(storage, self.make_corpus(), prefix="in/")
        paths = corpus_paths(storage, "in/")
        assert len(paths) == 2
        assert all(p.startswith("in/doc-") for p in paths)

    def test_read_document_cost(self, storage):
        store_corpus(storage, self.make_corpus(), prefix="in/")
        doc, cost = read_document(storage, "in/doc-000000", doc_id=0)
        assert doc.text == "first doc"
        assert doc.doc_id == 0
        assert cost.disk_read_bytes == len("first doc")
