"""Tests for the ARFF reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ArffFormatError
from repro.io import read_sparse_arff, write_sparse_arff
from repro.io.arff import arff_lines, parse_arff_lines
from repro.sparse import SparseVector


def sample_rows():
    return [
        SparseVector([0, 2], [1.0, 0.5]),
        SparseVector(),
        SparseVector([1], [2.25]),
    ]


class TestWriter:
    def test_header_structure(self):
        doc = write_sparse_arff("tfidf", ["alpha", "beta", "gamma"], sample_rows())
        lines = doc.splitlines()
        assert lines[0] == "@relation tfidf"
        assert "@attribute alpha numeric" in lines
        assert "@data" in lines

    def test_sparse_rows_rendered(self):
        doc = write_sparse_arff("r", ["a", "b", "c"], sample_rows())
        data = doc.split("@data\n", 1)[1].splitlines()
        assert data[0] == "{0 1,2 0.5}"
        assert data[1] == "{}"
        assert data[2] == "{1 2.25}"

    def test_attribute_quoting(self):
        doc = write_sparse_arff("r", ["with space", "don't"], [SparseVector()])
        assert "@attribute 'with space' numeric" in doc
        assert "@attribute 'don\\'t' numeric" in doc

    def test_relation_quoting(self):
        doc = write_sparse_arff("my relation", ["a"], [])
        assert doc.splitlines()[0] == "@relation 'my relation'"

    def test_dense_mode(self):
        lines = list(
            arff_lines("r", ["a", "b"], [SparseVector([1], [3.0])], sparse=False)
        )
        assert lines[-1] == "0,3"


class TestRoundTrip:
    def test_roundtrip_preserves_rows(self):
        attributes = ["t0", "t1", "t2"]
        doc = write_sparse_arff("tfidf", attributes, sample_rows())
        relation = read_sparse_arff(doc)
        assert relation.name == "tfidf"
        assert relation.attributes == attributes
        assert list(relation.rows.iter_rows()) == sample_rows()

    def test_roundtrip_quoted_names(self):
        attributes = ["plain", "with space"]
        doc = write_sparse_arff("r x", attributes, [SparseVector([1], [1.0])])
        relation = read_sparse_arff(doc)
        assert relation.name == "r x"
        assert relation.attributes == attributes

    @given(
        st.lists(
            st.dictionaries(st.integers(0, 20), st.floats(0.001, 100), max_size=8),
            max_size=10,
        )
    )
    def test_roundtrip_random_rows(self, dicts):
        rows = [SparseVector.from_dict(d) for d in dicts]
        attributes = [f"term{i}" for i in range(21)]
        relation = read_sparse_arff(write_sparse_arff("r", attributes, rows))
        assert relation.rows.n_rows == len(rows)
        for original, parsed in zip(rows, relation.rows.iter_rows()):
            assert parsed.indices == original.indices
            for a, b in zip(parsed.values, original.values):
                assert a == pytest.approx(b, rel=1e-5)


class TestNonFiniteValues:
    """NaN/inf have no ARFF representation: rejected on both sides."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_writer_rejects_sparse_rows(self, bad):
        rows = [SparseVector([0], [1.0]), SparseVector([1], [bad])]
        with pytest.raises(ArffFormatError, match=r"row 1, attribute 'beta'"):
            write_sparse_arff("r", ["alpha", "beta"], rows)

    def test_writer_rejects_dense_rows(self):
        lines = arff_lines(
            "r", ["alpha", "beta"], [SparseVector([0], [float("nan")])], sparse=False
        )
        with pytest.raises(ArffFormatError, match=r"row 0, attribute 'alpha'"):
            list(lines)

    @pytest.mark.parametrize("token", ["nan", "inf", "-inf", "Infinity"])
    def test_reader_rejects_sparse_tokens(self, token):
        doc = f"@relation r\n@attribute a numeric\n@data\n{{0 {token}}}\n"
        with pytest.raises(ArffFormatError, match="non-finite"):
            read_sparse_arff(doc)

    @pytest.mark.parametrize("token", ["nan", "inf", "-inf"])
    def test_reader_rejects_dense_tokens(self, token):
        doc = (
            "@relation r\n@attribute a numeric\n@attribute b numeric\n"
            f"@data\n1,{token}\n"
        )
        with pytest.raises(ArffFormatError, match="non-finite"):
            read_sparse_arff(doc)


class TestQuotingRoundTrip:
    """Names full of quotes/escapes must survive a write→read round trip."""

    _NASTY = st.text(alphabet="ab \\'\"%,{}\t", max_size=8)

    def test_backslash_quote_sequence_roundtrips(self):
        # A backslash immediately before a quote is the case a chained
        # str.replace unquoter can corrupt; the scanner must not.
        for name in ("a\\'b", "\\\\", "it's", 'say "hi"', "tab\there"):
            doc = write_sparse_arff(name, [name], [SparseVector([0], [1.5])])
            relation = read_sparse_arff(doc)
            assert relation.name == name
            assert relation.attributes == [name]

    @given(name=_NASTY, attrs=st.lists(_NASTY, min_size=1, max_size=4))
    def test_arbitrary_names_roundtrip(self, name, attrs):
        doc = write_sparse_arff(name, attrs, [SparseVector([0], [1.5])])
        relation = read_sparse_arff(doc)
        assert relation.name == name
        assert relation.attributes == attrs


class TestHeaderKeywordBoundaries:
    @pytest.mark.parametrize(
        "doc",
        [
            # Pre-fix, bare startswith parsed "@relationfoo" as relation "foo".
            "@relationfoo\n@attribute a numeric\n@data\n{0 1}\n",
            "@relation r\n@attributefoo a numeric\n@data\n{0 1}\n",
            "@relation r\n@attribute a numeric\n@datafoo\n@data\n{0 1}\n",
        ],
    )
    def test_glued_keywords_rejected(self, doc):
        with pytest.raises(ArffFormatError, match="unrecognised header"):
            read_sparse_arff(doc)

    def test_keywords_still_match_with_extra_whitespace(self):
        doc = "@relation\tr\n@attribute\ta numeric\n@data\n{0 1}\n"
        assert read_sparse_arff(doc).name == "r"


class TestParser:
    def test_comments_and_blank_lines_ignored(self):
        doc = "\n".join(
            [
                "% a comment",
                "@relation r",
                "",
                "@attribute a numeric",
                "@attribute b numeric",
                "% another",
                "@data",
                "{0 1}",
            ]
        )
        relation = read_sparse_arff(doc)
        assert relation.rows.n_rows == 1

    def test_dense_rows_parsed(self):
        doc = "@relation r\n@attribute a numeric\n@attribute b numeric\n@data\n1,2\n0,0\n"
        relation = read_sparse_arff(doc)
        assert relation.rows.row(0) == SparseVector([0, 1], [1.0, 2.0])
        assert relation.rows.row(1).nnz == 0

    def test_case_insensitive_keywords(self):
        doc = "@RELATION r\n@ATTRIBUTE a NUMERIC\n@DATA\n{0 1}\n"
        assert read_sparse_arff(doc).name == "r"

    @pytest.mark.parametrize(
        "doc",
        [
            "@attribute a numeric\n@data\n",  # missing relation
            "@relation r\n@data\n",  # no attributes
            "@relation r\n@attribute a numeric\n",  # no data section
            "@relation r\n@attribute a string\n@data\n",  # bad type
            "@relation r\n@attribute a numeric\n@data\n{0 1",  # unterminated
            "@relation r\n@attribute a numeric\n@data\n{5 1}",  # index range
            "@relation r\n@attribute a numeric\n@data\n{0 x}",  # bad value
            "@relation r\n@attribute a numeric\n@data\n{0 1,0 2}",  # dup index
            "@relation r\n@attribute a numeric\n@data\n1,2",  # arity
            "@relation r\nbogus line\n@data\n",  # unknown header
            "@relation r\n@attribute a\n@data\n",  # missing type
        ],
    )
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(ArffFormatError):
            read_sparse_arff(doc)

    def test_sparse_entries_may_be_unordered(self):
        doc = "@relation r\n@attribute a numeric\n@attribute b numeric\n@data\n{1 2,0 1}\n"
        row = read_sparse_arff(doc).rows.row(0)
        assert row.indices == [0, 1]

    def test_parse_from_line_iterable(self):
        lines = ["@relation r", "@attribute a numeric", "@data", "{0 3}"]
        relation = parse_arff_lines(iter(lines))
        assert relation.rows.row(0).get(0) == 3.0
